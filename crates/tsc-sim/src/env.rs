//! The multi-agent control environment wrapping the simulator.
//!
//! [`TscEnv`] exposes the simulator at the *decision* cadence of the
//! paper (§IV-B, §VI-A): every step, each agent picks a phase; the
//! environment holds that phase for `decision_interval` seconds of
//! green, preceded by the yellow clearance whenever the phase changed,
//! and returns each intersection's observation and reward (Eq. 6) at
//! the end of the interval.

use crate::chaos::ChaosPlan;
use crate::detector::IntersectionObs;
use crate::error::SimError;
use crate::ids::NodeId;
use crate::scenario::Scenario;
use crate::sim::{SimConfig, Simulation};

/// Decision cadence of the environment.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnvConfig {
    /// Green seconds per decision (paper: 5).
    pub decision_interval: u32,
    /// Episode length in simulation seconds (demand horizon).
    pub episode_horizon: u32,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            decision_interval: 5,
            episode_horizon: 3600,
        }
    }
}

/// Result of one environment step.
#[derive(Debug, Clone)]
pub struct EnvStep {
    /// Per-agent observations at the end of the interval.
    pub obs: Vec<IntersectionObs>,
    /// Per-agent rewards (Eq. 6) at the end of the interval.
    pub rewards: Vec<f64>,
    /// Whether the episode horizon has been reached.
    pub done: bool,
}

/// A controller maps joint observations to joint phase choices.
///
/// Implemented by every model in this repository (fixed-time, single
/// agent RL, MA2C, CoLight, PairUpLight), which is what lets the
/// experiment harness evaluate them interchangeably.
pub trait Controller {
    /// Called at episode start.
    fn reset(&mut self) {}

    /// Picks one phase index per agent, in agent order.
    fn decide(&mut self, obs: &[IntersectionObs]) -> Vec<usize>;
}

/// The multi-agent traffic-signal-control environment.
///
/// `Clone` copies the full simulation state, which is what makes cheap
/// per-worker environment replicas possible in the data-parallel
/// rollout engine (see [`crate::rollout::RolloutSet`]).
#[derive(Debug, Clone)]
pub struct TscEnv {
    scenario: Scenario,
    sim_config: SimConfig,
    env_config: EnvConfig,
    sim: Simulation,
    agents: Vec<NodeId>,
    /// Installed chaos plan, re-installed into the fresh simulation on
    /// every [`reset`](Self::reset).
    chaos: ChaosPlan,
    /// Structural fingerprint of `scenario`, computed once at
    /// construction (see [`Scenario::fingerprint`]).
    fingerprint: u64,
    /// Whether episodes run on the legacy tick oracle instead of the
    /// event core (see [`Simulation::new_legacy`]); preserved across
    /// [`reset`](Self::reset).
    #[cfg_attr(not(feature = "legacy-oracle"), allow(dead_code))]
    legacy: bool,
}

/// Computes the scenario fingerprint and records the construction in
/// the tsc-obs scenario-event ring (observation-only; no RNG impact).
fn fingerprint_and_record(scenario: &Scenario, agents: usize) -> u64 {
    let fingerprint = scenario.fingerprint();
    tsc_obs::record_scenario(
        &scenario.name,
        fingerprint,
        agents,
        scenario.network.num_links(),
    );
    fingerprint
}

impl TscEnv {
    /// Creates the environment and its first episode.
    ///
    /// # Errors
    ///
    /// Propagates simulation construction failures (bad config,
    /// unroutable OD pairs).
    pub fn new(
        scenario: Scenario,
        sim_config: SimConfig,
        env_config: EnvConfig,
        seed: u64,
    ) -> Result<Self, SimError> {
        let sim = Simulation::new(&scenario, sim_config, seed)?;
        let agents = scenario.agents();
        let fingerprint = fingerprint_and_record(&scenario, agents.len());
        Ok(TscEnv {
            scenario,
            sim_config,
            env_config,
            sim,
            agents,
            chaos: ChaosPlan::default(),
            fingerprint,
            legacy: false,
        })
    }

    /// Creates the environment on the legacy per-second tick stepper
    /// instead of the event core. Episodes started via
    /// [`reset`](Self::reset) stay on the legacy engine. Exists so the
    /// differential parity harness and the end-to-end training pin can
    /// compare whole training runs across engines.
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    #[cfg(feature = "legacy-oracle")]
    pub fn new_legacy(
        scenario: Scenario,
        sim_config: SimConfig,
        env_config: EnvConfig,
        seed: u64,
    ) -> Result<Self, SimError> {
        let sim = Simulation::new_legacy(&scenario, sim_config, seed)?;
        let agents = scenario.agents();
        let fingerprint = fingerprint_and_record(&scenario, agents.len());
        Ok(TscEnv {
            scenario,
            sim_config,
            env_config,
            sim,
            agents,
            chaos: ChaosPlan::default(),
            fingerprint,
            legacy: true,
        })
    }

    /// Creates the environment with a chaos plan installed from the
    /// start (equivalent to [`new`](Self::new) followed by
    /// [`set_chaos`](Self::set_chaos)).
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn with_chaos(
        scenario: Scenario,
        sim_config: SimConfig,
        env_config: EnvConfig,
        seed: u64,
        chaos: ChaosPlan,
    ) -> Result<Self, SimError> {
        let mut env = Self::new(scenario, sim_config, env_config, seed)?;
        env.set_chaos(chaos);
        Ok(env)
    }

    /// Installs (or replaces) the chaos plan: it takes effect on the
    /// running episode immediately and survives every subsequent
    /// [`reset`](Self::reset). An empty plan restores fault-free
    /// behavior exactly.
    pub fn set_chaos(&mut self, chaos: ChaosPlan) {
        self.sim.set_chaos(chaos.clone());
        self.chaos = chaos;
    }

    /// The installed chaos plan (empty by default).
    pub fn chaos(&self) -> &ChaosPlan {
        &self.chaos
    }

    /// The controlled intersections, in agent order.
    pub fn agents(&self) -> &[NodeId] {
        &self.agents
    }

    /// Number of agents.
    pub fn num_agents(&self) -> usize {
        self.agents.len()
    }

    /// The environment configuration.
    pub fn env_config(&self) -> &EnvConfig {
        &self.env_config
    }

    /// The underlying simulation (read access for metrics/diagnostics).
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// The scenario driving this environment.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The scenario's structural fingerprint (computed once at
    /// construction; see [`Scenario::fingerprint`]). Bench reports
    /// embed this value so runs are attributable to an exact world.
    pub fn scenario_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Seconds of simulated time per decision step (yellow + green).
    pub fn seconds_per_step(&self) -> u32 {
        self.sim_config.yellow_time + self.env_config.decision_interval
    }

    /// Decision steps per episode.
    pub fn steps_per_episode(&self) -> usize {
        (self.env_config.episode_horizon as usize).div_ceil(self.seconds_per_step() as usize)
    }

    /// Starts a new episode with `seed` and returns initial observations.
    pub fn reset(&mut self, seed: u64) -> Vec<IntersectionObs> {
        #[cfg(feature = "legacy-oracle")]
        if self.legacy {
            self.sim = Simulation::with_chaos_legacy(
                &self.scenario,
                self.sim_config,
                seed,
                self.chaos.clone(),
            )
            .expect("scenario validated at construction");
            return self.sim.observe_all();
        }
        self.sim =
            Simulation::with_chaos(&self.scenario, self.sim_config, seed, self.chaos.clone())
                .expect("scenario validated at construction");
        self.sim.observe_all()
    }

    /// Applies one joint action and advances yellow + green seconds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ActionLengthMismatch`] or
    /// [`SimError::InvalidPhase`]. Agents whose plan has fewer phases
    /// than the requested index are *not* wrapped here; controllers are
    /// responsible for emitting valid indices (see
    /// [`clamp_action`](Self::clamp_action)).
    pub fn step(&mut self, actions: &[usize]) -> Result<EnvStep, SimError> {
        let _span = tsc_obs::span!("sim.env_step");
        if actions.len() != self.agents.len() {
            return Err(SimError::ActionLengthMismatch {
                got: actions.len(),
                expected: self.agents.len(),
            });
        }
        for (&node, &phase) in self.agents.iter().zip(actions) {
            self.sim.request_phase(node, phase)?;
        }
        for _ in 0..self.seconds_per_step() {
            self.sim.step()?;
        }
        let obs = self.sim.observe_all();
        let rewards = obs.iter().map(IntersectionObs::reward).collect();
        let done = self.sim.time() >= self.env_config.episode_horizon;
        Ok(EnvStep { obs, rewards, done })
    }

    /// Maps an arbitrary action index into the valid phase range of
    /// agent `agent_idx` (modulo), for controllers with a uniform
    /// action space driving heterogeneous intersections.
    pub fn clamp_action(&self, agent_idx: usize, action: usize) -> usize {
        let n = self.scenario.signal_plans[agent_idx].num_phases();
        action % n
    }

    /// Runs `controller` for one full episode and returns the final
    /// simulation state for metric extraction.
    ///
    /// # Errors
    ///
    /// Propagates environment step failures.
    pub fn run_episode<C: Controller + ?Sized>(
        &mut self,
        controller: &mut C,
        seed: u64,
    ) -> Result<EpisodeStats, SimError> {
        let mut obs = self.reset(seed);
        controller.reset();
        let mut reward_sum = 0.0;
        let mut steps = 0usize;
        loop {
            let raw = controller.decide(&obs);
            let actions: Vec<usize> = raw
                .iter()
                .enumerate()
                .map(|(i, &a)| self.clamp_action(i, a))
                .collect();
            let step = self.step(&actions)?;
            reward_sum += step.rewards.iter().sum::<f64>();
            steps += 1;
            obs = step.obs;
            if step.done {
                break;
            }
        }
        Ok(EpisodeStats {
            steps,
            total_reward: reward_sum,
            avg_waiting_time: self.sim.metrics().avg_waiting_time(),
            avg_travel_time: self.sim.avg_travel_time(),
            finished: self.sim.metrics().finished(),
            spawned: self.sim.metrics().spawned(),
        })
    }

    /// Continues stepping the current episode with `controller` until
    /// the network drains (no active vehicles and demand exhausted) or
    /// `cap_time` is reached — used for travel-time evaluation where
    /// gridlocked vehicles must keep accruing time (Table II).
    ///
    /// # Errors
    ///
    /// Propagates environment step failures.
    pub fn drain<C: Controller + ?Sized>(
        &mut self,
        controller: &mut C,
        cap_time: u32,
    ) -> Result<(), SimError> {
        let mut obs = self.sim.observe_all();
        while self.sim.active_vehicles() > 0 && self.sim.time() < cap_time {
            let raw = controller.decide(&obs);
            let actions: Vec<usize> = raw
                .iter()
                .enumerate()
                .map(|(i, &a)| self.clamp_action(i, a))
                .collect();
            let step = self.step(&actions)?;
            obs = step.obs;
        }
        Ok(())
    }
}

/// Summary statistics of one episode.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EpisodeStats {
    /// Decision steps taken.
    pub steps: usize,
    /// Sum of all agents' rewards.
    pub total_reward: f64,
    /// Paper metric: episode mean of the per-step mean-of-max waits (s).
    pub avg_waiting_time: f64,
    /// Paper metric: average travel time including unfinished trips (s).
    pub avg_travel_time: f64,
    /// Completed trips.
    pub finished: usize,
    /// Generated vehicles.
    pub spawned: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::grid::{Grid, GridConfig};
    use crate::scenario::patterns::{flows, FlowPattern, PatternConfig};

    fn env() -> TscEnv {
        let grid = Grid::build(GridConfig {
            cols: 3,
            rows: 3,
            spacing: 200.0,
        })
        .unwrap();
        let f = flows(&grid, FlowPattern::Five, &PatternConfig::default()).unwrap();
        let scenario = grid.scenario("test", f).unwrap();
        TscEnv::new(
            scenario,
            SimConfig::default(),
            EnvConfig {
                decision_interval: 5,
                episode_horizon: 140,
            },
            7,
        )
        .unwrap()
    }

    struct AlwaysPhase(usize);
    impl Controller for AlwaysPhase {
        fn decide(&mut self, obs: &[IntersectionObs]) -> Vec<usize> {
            vec![self.0; obs.len()]
        }
    }

    #[test]
    fn step_advances_yellow_plus_green_seconds() {
        let mut e = env();
        e.reset(1);
        assert_eq!(e.seconds_per_step(), 7);
        let step = e.step(&vec![0; e.num_agents()]).unwrap();
        assert_eq!(e.sim().time(), 7);
        assert_eq!(step.obs.len(), 9);
        assert_eq!(step.rewards.len(), 9);
    }

    #[test]
    fn episode_terminates_at_horizon() {
        let mut e = env();
        let stats = e.run_episode(&mut AlwaysPhase(2), 3).unwrap();
        assert_eq!(stats.steps, e.steps_per_episode());
        assert!(e.sim().time() >= 140);
    }

    #[test]
    fn wrong_action_length_is_rejected() {
        let mut e = env();
        e.reset(1);
        assert!(matches!(
            e.step(&[0, 1]),
            Err(SimError::ActionLengthMismatch {
                got: 2,
                expected: 9
            })
        ));
    }

    #[test]
    fn reset_is_reproducible() {
        let mut e = env();
        let a = e.run_episode(&mut AlwaysPhase(2), 5).unwrap();
        let b = e.run_episode(&mut AlwaysPhase(2), 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn clamp_action_wraps_modulo() {
        let e = env();
        assert_eq!(e.clamp_action(0, 5), 1);
        assert_eq!(e.clamp_action(0, 3), 3);
    }

    #[test]
    fn rewards_are_nonpositive() {
        let mut e = env();
        let mut obs = e.reset(2);
        for _ in 0..10 {
            let step = e.step(&vec![0; obs.len()]).unwrap();
            obs = step.obs;
            assert!(step.rewards.iter().all(|&r| r <= 0.0));
        }
    }
}
