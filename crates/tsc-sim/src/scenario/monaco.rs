//! A heterogeneous real-world-style scenario standing in for the
//! paper's Monaco network (§VI-D).
//!
//! The paper's Monaco dataset is derived from OpenStreetMap and the MA2C
//! codebase; we do not ship that data, so — per the substitution rule in
//! DESIGN.md — this module generates a network with the *properties the
//! experiment depends on*:
//!
//! * 30 signalized intersections,
//! * heterogeneous geometry: irregular node degree (3–4 approaches),
//!   mixed one/two-lane links, varied link lengths, and per-intersection
//!   phase sets of different sizes (which is exactly what makes
//!   parameter sharing infeasible, the point of §VI-D),
//! * multiple conflicting flows with a peak rate of 975 veh/h producing
//!   saturated conditions.
//!
//! Generation is fully deterministic given a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::demand::{FlowProfile, OdFlow};
use crate::error::SimError;
use crate::ids::{Direction, NodeId};
use crate::network::{Lane, Movement, NetworkBuilder};
use crate::routing::shortest_route;
use crate::scenario::Scenario;
use crate::signal::SignalPlan;

/// Parameters of the synthetic Monaco-style scenario.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonacoConfig {
    /// Intersection grid columns before perturbation (6×5 = 30).
    pub cols: usize,
    /// Intersection grid rows before perturbation.
    pub rows: usize,
    /// Mean link length (m).
    pub spacing: f64,
    /// Fraction of interior edges removed to create irregular degree.
    pub edge_removal: f64,
    /// Peak rate of each conflicting flow (veh/h). Paper: 975.
    pub peak_rate: f64,
    /// Number of OD flows.
    pub num_flows: usize,
    /// Demand end time (s).
    pub horizon: f64,
}

impl Default for MonacoConfig {
    fn default() -> Self {
        MonacoConfig {
            cols: 6,
            rows: 5,
            spacing: 250.0,
            edge_removal: 0.18,
            peak_rate: 975.0,
            num_flows: 10,
            horizon: 2700.0,
        }
    }
}

/// Builds the Monaco-style heterogeneous scenario.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for degenerate parameters.
pub fn scenario(cfg: &MonacoConfig, seed: u64) -> Result<Scenario, SimError> {
    if cfg.cols < 3 || cfg.rows < 3 {
        return Err(SimError::InvalidConfig(
            "monaco scenario needs at least a 3x3 lattice".into(),
        ));
    }
    if !(0.0..0.5).contains(&cfg.edge_removal) {
        return Err(SimError::InvalidConfig(
            "edge_removal must be in [0, 0.5)".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new();
    let s = cfg.spacing;
    // Jittered lattice positions give varied link lengths.
    let mut nodes = vec![vec![NodeId(0); cfg.rows]; cfg.cols];
    for (col, column) in nodes.iter_mut().enumerate() {
        for (row, slot) in column.iter_mut().enumerate() {
            let jx = rng.gen_range(-0.18..0.18) * s;
            let jy = rng.gen_range(-0.18..0.18) * s;
            *slot = b.add_node(col as f64 * s + jx, row as f64 * s + jy, true);
        }
    }
    // Candidate interior edges; drop a deterministic random subset, but
    // never disconnect a node below degree 2 (so routes stay plentiful).
    let mut degree = vec![0usize; cfg.cols * cfg.rows];
    let idx = |c: usize, r: usize| c * cfg.rows + r;
    let mut edges: Vec<(usize, usize, usize, usize, Direction)> = Vec::new();
    for c in 0..cfg.cols {
        for r in 0..cfg.rows {
            if c + 1 < cfg.cols {
                edges.push((c, r, c + 1, r, Direction::East));
            }
            if r + 1 < cfg.rows {
                edges.push((c, r, c, r + 1, Direction::North));
            }
        }
    }
    for &(c0, r0, c1, r1, _) in &edges {
        degree[idx(c0, r0)] += 1;
        degree[idx(c1, r1)] += 1;
    }
    let mut kept = Vec::new();
    for e in edges {
        let (c0, r0, c1, r1, _) = e;
        let removable = degree[idx(c0, r0)] > 2 && degree[idx(c1, r1)] > 2;
        if removable && rng.gen::<f64>() < cfg.edge_removal {
            degree[idx(c0, r0)] -= 1;
            degree[idx(c1, r1)] -= 1;
        } else {
            kept.push(e);
        }
    }
    // Materialize kept edges with heterogeneous lane allocations.
    for (c0, r0, c1, r1, dir) in kept {
        let a = nodes[c0][r0];
        let c = nodes[c1][r1];
        let two_lane = rng.gen::<f64>() < 0.4;
        let lanes = || -> Vec<Lane> {
            if two_lane {
                vec![
                    Lane::new(&[Movement::Left]),
                    Lane::new(&[Movement::Through, Movement::Right]),
                ]
            } else {
                vec![Lane::all_movements()]
            }
        };
        b.add_link(a, c, dir, lanes())?;
        b.add_link(c, a, dir.opposite(), lanes())?;
    }
    // Boundary terminals on the west/east rows and south/north columns.
    let mut terminals = Vec::new();
    let (first_col, last_col) = (&nodes[0], &nodes[cfg.cols - 1]);
    for (r, (&wi, &ei)) in first_col.iter().zip(last_col).enumerate() {
        let w = b.add_node(-s, r as f64 * s, false);
        let e = b.add_node(cfg.cols as f64 * s, r as f64 * s, false);
        b.add_link(w, wi, Direction::East, vec![Lane::all_movements()])?;
        b.add_link(wi, w, Direction::West, vec![Lane::all_movements()])?;
        b.add_link(e, ei, Direction::West, vec![Lane::all_movements()])?;
        b.add_link(ei, e, Direction::East, vec![Lane::all_movements()])?;
        terminals.push(w);
        terminals.push(e);
    }
    for (c, column) in nodes.iter().enumerate() {
        let (&si, &ni) = (&column[0], &column[cfg.rows - 1]);
        let so = b.add_node(c as f64 * s, -s, false);
        let no = b.add_node(c as f64 * s, cfg.rows as f64 * s, false);
        b.add_link(so, si, Direction::North, vec![Lane::all_movements()])?;
        b.add_link(si, so, Direction::South, vec![Lane::all_movements()])?;
        b.add_link(no, ni, Direction::South, vec![Lane::all_movements()])?;
        b.add_link(ni, no, Direction::North, vec![Lane::all_movements()])?;
        terminals.push(so);
        terminals.push(no);
    }
    let network = b.build()?;
    // Per-intersection phase plans; three-way intersections get fewer
    // phases, which is the heterogeneity §VI-D depends on.
    let mut plans = Vec::new();
    for column in &nodes {
        for &n in column {
            plans.push(SignalPlan::four_phase(&network, n)?);
        }
    }
    // Conflicting OD flows: sample terminal pairs on different sides,
    // keep those with a route, stagger their onsets.
    let mut flows = Vec::new();
    let mut attempts = 0;
    while flows.len() < cfg.num_flows && attempts < 400 {
        attempts += 1;
        let o = terminals[rng.gen_range(0..terminals.len())];
        let d = terminals[rng.gen_range(0..terminals.len())];
        if o == d {
            continue;
        }
        if shortest_route(&network, o, d, 13.89).is_err() {
            continue;
        }
        let onset = f64::from(rng.gen_range(0..3u32)) * 300.0;
        let peak = onset + 900.0;
        let end = (peak + 900.0).min(cfg.horizon.max(peak + 1.0));
        flows.push(OdFlow::new(
            o,
            d,
            FlowProfile::ramp(onset, peak, end, cfg.peak_rate, 50.0),
        ));
    }
    if flows.len() < cfg.num_flows {
        return Err(SimError::InvalidConfig(
            "could not sample enough routable OD flows".into(),
        ));
    }
    Scenario::new("Monaco", network, plans, flows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monaco_has_thirty_signalized_intersections() {
        let sc = scenario(&MonacoConfig::default(), 11).unwrap();
        assert_eq!(sc.num_agents(), 30);
        assert_eq!(sc.network.signalized_nodes().len(), 30);
    }

    #[test]
    fn monaco_is_heterogeneous() {
        let sc = scenario(&MonacoConfig::default(), 11).unwrap();
        let lane_counts: std::collections::HashSet<usize> =
            sc.network.links().iter().map(|l| l.num_lanes()).collect();
        assert!(lane_counts.len() >= 2, "mixed lane counts");
        let degrees: std::collections::HashSet<usize> = sc
            .agents()
            .iter()
            .map(|&n| sc.network.incoming(n).len())
            .collect();
        assert!(degrees.len() >= 2, "irregular intersection degree");
        let phase_counts: std::collections::HashSet<usize> =
            sc.signal_plans.iter().map(|p| p.num_phases()).collect();
        assert!(phase_counts.len() >= 2, "varied phase sets");
    }

    #[test]
    fn monaco_flows_peak_at_975() {
        let sc = scenario(&MonacoConfig::default(), 11).unwrap();
        let max_rate = sc
            .flows
            .iter()
            .flat_map(|f| {
                (0..3600)
                    .map(|t| f.profile.rate_at(f64::from(t)))
                    .collect::<Vec<_>>()
            })
            .fold(0.0, f64::max);
        assert!((max_rate - 975.0).abs() < 2.0, "max rate {max_rate}");
    }

    #[test]
    fn monaco_generation_is_deterministic() {
        let a = scenario(&MonacoConfig::default(), 5).unwrap();
        let b = scenario(&MonacoConfig::default(), 5).unwrap();
        assert_eq!(a.network.num_links(), b.network.num_links());
        assert_eq!(a.flows.len(), b.flows.len());
        for (x, y) in a.flows.iter().zip(&b.flows) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = scenario(&MonacoConfig::default(), 5).unwrap();
        let b = scenario(&MonacoConfig::default(), 6).unwrap();
        let fa: Vec<_> = a.flows.iter().map(|f| (f.origin, f.destination)).collect();
        let fb: Vec<_> = b.flows.iter().map(|f| (f.origin, f.destination)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn all_monaco_routes_exist() {
        let sc = scenario(&MonacoConfig::default(), 11).unwrap();
        for f in &sc.flows {
            shortest_route(&sc.network, f.origin, f.destination, 13.89).unwrap();
        }
    }
}
