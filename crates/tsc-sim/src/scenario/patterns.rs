//! The five traffic flow patterns of the paper's Fig. 6.
//!
//! Patterns 1–4 are *congestion* patterns built with the paper's two
//! strategies (§VI-A "Traffic Flow Design"): (1) many intersecting OD
//! pairs, and (2) staggered departure times so flows overlap. Each
//! pattern loads two flow groups from `t = 0` (peaking at 900 s) and the
//! two reverse groups from `t = 900 s` (peaking at 1800 s); during the
//! 900–1800 s overlap **16 OD pairs** coexist, matching the paper. The
//! peak rate is 500 veh/h per OD pair.
//!
//! Fig. 6 is only available as an image, so the exact OD geometry is a
//! documented reconstruction (see DESIGN.md): the four patterns differ
//! in how much their routes *conflict* — a mixed straight/turning load
//! (1, the training pattern), right-turning L-routes (2), left-turning
//! L-routes (3), and pure crossing corridors (4) — which reproduces the
//! paper's spread of difficulty.
//!
//! Pattern 5 is the uniform light-traffic pattern: 300 veh/h west→east
//! and 90 veh/h south→north (§VI-A).

use crate::demand::{FlowProfile, OdFlow};
use crate::error::SimError;
use crate::scenario::grid::Grid;
use crate::scenario::Boundary;

/// The five evaluation flow patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FlowPattern {
    /// Mixed straight + L-shaped routes (the training pattern).
    One,
    /// Heavily turning, maximally conflicting routes.
    Two,
    /// L-shaped routes on the opposite diagonal to Pattern 2,
    /// requiring mid-grid left turns.
    Three,
    /// Pure crossing corridors (maximal head-on conflict).
    Four,
    /// Uniform light traffic: 300 veh/h W→E, 90 veh/h S→N.
    Five,
}

impl FlowPattern {
    /// All patterns in paper order.
    pub const ALL: [FlowPattern; 5] = [
        FlowPattern::One,
        FlowPattern::Two,
        FlowPattern::Three,
        FlowPattern::Four,
        FlowPattern::Five,
    ];

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            FlowPattern::One => "Pattern 1",
            FlowPattern::Two => "Pattern 2",
            FlowPattern::Three => "Pattern 3",
            FlowPattern::Four => "Pattern 4",
            FlowPattern::Five => "Pattern 5",
        }
    }

    /// The paper's 1-based pattern number.
    pub fn number(self) -> usize {
        match self {
            FlowPattern::One => 1,
            FlowPattern::Two => 2,
            FlowPattern::Three => 3,
            FlowPattern::Four => 4,
            FlowPattern::Five => 5,
        }
    }

    /// The pattern with the given 1-based number, if any — the inverse
    /// of [`number`](Self::number), used by the scenario spec parser.
    pub fn from_number(n: usize) -> Option<FlowPattern> {
        FlowPattern::ALL.get(n.wrapping_sub(1)).copied()
    }
}

/// Parameters of the congestion patterns.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PatternConfig {
    /// Peak rate per OD pair (veh/h). Paper: 500.
    pub peak_rate: f64,
    /// Base rate at the start/end of each ramp (veh/h).
    pub base_rate: f64,
    /// Time of the first group's peak (s). Paper: 900.
    pub peak_time: f64,
    /// Uniform pattern rates (veh/h): west→east and south→north.
    pub uniform_we: f64,
    /// South→north uniform rate (veh/h).
    pub uniform_sn: f64,
    /// End of the uniform pattern (s).
    pub uniform_end: f64,
}

impl Default for PatternConfig {
    fn default() -> Self {
        PatternConfig {
            peak_rate: 500.0,
            base_rate: 100.0,
            peak_time: 900.0,
            uniform_we: 300.0,
            uniform_sn: 90.0,
            uniform_end: 3600.0,
        }
    }
}

/// The middle band of indices used for congestion OD pairs: four
/// rows/columns centred in the grid (indices 1..=4 on a 6-grid).
fn middle_band(n: usize) -> Vec<usize> {
    if n <= 4 {
        (0..n).collect()
    } else {
        let start = (n - 4) / 2;
        (start..start + 4).collect()
    }
}

/// Builds the OD flow list for `pattern` on `grid` — the historical
/// grid-only entry point, now a thin wrapper over [`flows_on`] with the
/// grid's [`Boundary`].
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for non-positive rates.
pub fn flows(
    grid: &Grid,
    pattern: FlowPattern,
    cfg: &PatternConfig,
) -> Result<Vec<OdFlow>, SimError> {
    flows_on(&grid.boundary(), pattern, cfg)
}

/// Builds the OD flow list for `pattern` on any network exposing a
/// rectangular [`Boundary`] — the 6×6 grid, a compiled city graph, an
/// arterial corridor. Rows and columns are taken from the boundary's
/// terminal lists; the five patterns address terminals exactly as they
/// always addressed the grid's.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for non-positive rates or a
/// boundary with mismatched/empty sides.
pub fn flows_on(
    b: &Boundary,
    pattern: FlowPattern,
    cfg: &PatternConfig,
) -> Result<Vec<OdFlow>, SimError> {
    if cfg.peak_rate <= 0.0 || cfg.uniform_we <= 0.0 || cfg.uniform_sn <= 0.0 {
        return Err(SimError::InvalidConfig("pattern rates must be > 0".into()));
    }
    if b.west.len() != b.east.len() || b.south.len() != b.north.len() {
        return Err(SimError::InvalidConfig(
            "pattern boundary sides must pair up (west/east, south/north)".into(),
        ));
    }
    if b.west.is_empty() || b.south.is_empty() {
        return Err(SimError::InvalidConfig(
            "pattern boundary needs terminals on all four sides".into(),
        ));
    }
    let cols = b.cols();
    let rows = b.rows();
    let band_r = middle_band(rows);
    let band_c = middle_band(cols);
    // Group A ramps over [0, 2*peak]; group B over [peak, 3*peak].
    let ramp_a = FlowProfile::ramp(
        0.0,
        cfg.peak_time,
        2.0 * cfg.peak_time,
        cfg.peak_rate,
        cfg.base_rate,
    );
    let ramp_b = FlowProfile::ramp(
        cfg.peak_time,
        2.0 * cfg.peak_time,
        3.0 * cfg.peak_time,
        cfg.peak_rate,
        cfg.base_rate,
    );
    let mut out = Vec::new();
    match pattern {
        FlowPattern::One => {
            // The training pattern: a mixed load. Half the OD pairs are
            // straight corridors, half are L-shaped (so all four phase
            // types carry traffic during training, as in the paper's
            // Fig. 6 where flow arrows both cross and bend).
            for (i, &r) in band_r.iter().enumerate() {
                if i % 2 == 0 {
                    out.push(OdFlow::new(
                        b.west_terminal(r),
                        b.east_terminal(r),
                        ramp_a.clone(),
                    ));
                    out.push(OdFlow::new(
                        b.east_terminal(r),
                        b.west_terminal(r),
                        ramp_b.clone(),
                    ));
                } else {
                    let c = band_c[i % band_c.len()];
                    out.push(OdFlow::new(
                        b.west_terminal(r),
                        b.south_terminal(c),
                        ramp_a.clone(),
                    ));
                    out.push(OdFlow::new(
                        b.south_terminal(c),
                        b.west_terminal(r),
                        ramp_b.clone(),
                    ));
                }
            }
            for (i, &c) in band_c.iter().enumerate() {
                if i % 2 == 0 {
                    out.push(OdFlow::new(
                        b.north_terminal(c),
                        b.south_terminal(c),
                        ramp_a.clone(),
                    ));
                    out.push(OdFlow::new(
                        b.south_terminal(c),
                        b.north_terminal(c),
                        ramp_b.clone(),
                    ));
                } else {
                    let r = band_r[i % band_r.len()];
                    out.push(OdFlow::new(
                        b.north_terminal(c),
                        b.east_terminal(r),
                        ramp_a.clone(),
                    ));
                    out.push(OdFlow::new(
                        b.east_terminal(r),
                        b.north_terminal(c),
                        ramp_b.clone(),
                    ));
                }
            }
        }
        FlowPattern::Two => {
            // Heavy turning: every route is L-shaped, so each flow
            // crosses *and turns across* the opposing group.
            for (i, &r) in band_r.iter().enumerate() {
                let c = band_c[i % band_c.len()];
                out.push(OdFlow::new(
                    b.west_terminal(r),
                    b.south_terminal(c),
                    ramp_a.clone(),
                ));
                out.push(OdFlow::new(
                    b.south_terminal(c),
                    b.west_terminal(r),
                    ramp_b.clone(),
                ));
            }
            for (i, &c) in band_c.iter().enumerate() {
                let r = band_r[i % band_r.len()];
                out.push(OdFlow::new(
                    b.north_terminal(c),
                    b.east_terminal(r),
                    ramp_a.clone(),
                ));
                out.push(OdFlow::new(
                    b.east_terminal(r),
                    b.north_terminal(c),
                    ramp_b.clone(),
                ));
            }
        }
        FlowPattern::Three => {
            // The opposite turning diagonal to Pattern 2: these
            // L-shaped routes require *left* turns at their mid-grid
            // elbow, loading the dedicated left-turn phases that
            // Pattern 2's right-turning routes barely use.
            for (i, &r) in band_r.iter().enumerate() {
                let c = band_c[band_c.len() - 1 - (i % band_c.len())];
                out.push(OdFlow::new(
                    b.west_terminal(r),
                    b.north_terminal(c),
                    ramp_a.clone(),
                ));
                out.push(OdFlow::new(
                    b.north_terminal(c),
                    b.west_terminal(r),
                    ramp_b.clone(),
                ));
            }
            for (i, &c) in band_c.iter().enumerate() {
                let r = band_r[band_r.len() - 1 - (i % band_r.len())];
                out.push(OdFlow::new(
                    b.south_terminal(c),
                    b.east_terminal(r),
                    ramp_a.clone(),
                ));
                out.push(OdFlow::new(
                    b.east_terminal(r),
                    b.south_terminal(c),
                    ramp_b.clone(),
                ));
            }
        }
        FlowPattern::Four => {
            // Pure crossing corridors: every route is straight, maximal
            // head-on conflict between the EB/WB and NB/SB groups.
            for &r in &band_r {
                out.push(OdFlow::new(
                    b.west_terminal(r),
                    b.east_terminal(r),
                    ramp_a.clone(),
                ));
                out.push(OdFlow::new(
                    b.east_terminal(r),
                    b.west_terminal(r),
                    ramp_b.clone(),
                ));
            }
            for &c in &band_c {
                out.push(OdFlow::new(
                    b.north_terminal(c),
                    b.south_terminal(c),
                    ramp_a.clone(),
                ));
                out.push(OdFlow::new(
                    b.south_terminal(c),
                    b.north_terminal(c),
                    ramp_b.clone(),
                ));
            }
        }
        FlowPattern::Five => {
            for r in 0..rows {
                out.push(OdFlow::new(
                    b.west_terminal(r),
                    b.east_terminal(r),
                    FlowProfile::constant(cfg.uniform_we, 0.0, cfg.uniform_end),
                ));
            }
            for c in 0..cols {
                out.push(OdFlow::new(
                    b.south_terminal(c),
                    b.north_terminal(c),
                    FlowProfile::constant(cfg.uniform_sn, 0.0, cfg.uniform_end),
                ));
            }
        }
    }
    Ok(out)
}

/// Builds the full scenario for `pattern` on a fresh default 6×6 grid.
///
/// # Errors
///
/// Propagates grid/scenario construction failures.
pub fn grid_scenario(
    grid: &Grid,
    pattern: FlowPattern,
    cfg: &PatternConfig,
) -> Result<crate::scenario::Scenario, SimError> {
    let f = flows(grid, pattern, cfg)?;
    grid.scenario(pattern.name(), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::shortest_route;
    use crate::scenario::grid::GridConfig;

    fn grid() -> Grid {
        Grid::build(GridConfig::default()).unwrap()
    }

    #[test]
    fn congestion_patterns_have_sixteen_od_pairs() {
        let g = grid();
        for p in [
            FlowPattern::One,
            FlowPattern::Two,
            FlowPattern::Three,
            FlowPattern::Four,
        ] {
            let f = flows(&g, p, &PatternConfig::default()).unwrap();
            assert_eq!(f.len(), 16, "{}", p.name());
        }
    }

    #[test]
    fn sixteen_pairs_overlap_during_peak_window() {
        let g = grid();
        let f = flows(&g, FlowPattern::One, &PatternConfig::default()).unwrap();
        let active = |t: f64| f.iter().filter(|o| o.profile.rate_at(t) > 0.0).count();
        assert_eq!(active(1200.0), 16, "all 16 OD pairs active in overlap");
        assert_eq!(active(100.0), 8, "only group A at the start");
        assert_eq!(active(2600.0), 8, "only group B near the end");
    }

    #[test]
    fn all_pattern_routes_exist() {
        let g = grid();
        for p in FlowPattern::ALL {
            for f in flows(&g, p, &PatternConfig::default()).unwrap() {
                shortest_route(g.network(), f.origin, f.destination, 13.89)
                    .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            }
        }
    }

    #[test]
    fn uniform_pattern_matches_paper_rates() {
        let g = grid();
        let f = flows(&g, FlowPattern::Five, &PatternConfig::default()).unwrap();
        assert_eq!(f.len(), 12);
        let we: Vec<_> = f
            .iter()
            .filter(|o| o.profile.rate_at(100.0) == 300.0)
            .collect();
        let sn: Vec<_> = f
            .iter()
            .filter(|o| o.profile.rate_at(100.0) == 90.0)
            .collect();
        assert_eq!(we.len(), 6);
        assert_eq!(sn.len(), 6);
    }

    #[test]
    fn peak_rate_reaches_500() {
        let g = grid();
        let f = flows(&g, FlowPattern::One, &PatternConfig::default()).unwrap();
        let max_rate = f
            .iter()
            .map(|o| o.profile.rate_at(900.0))
            .fold(0.0, f64::max);
        assert_eq!(max_rate, 500.0);
    }

    #[test]
    fn pattern_two_routes_turn() {
        let g = grid();
        let f = flows(&g, FlowPattern::Two, &PatternConfig::default()).unwrap();
        for od in &f {
            let route = shortest_route(g.network(), od.origin, od.destination, 13.89).unwrap();
            let turns = route
                .windows(2)
                .filter(|w| {
                    g.network().movement_between(w[0], w[1])
                        != Some(crate::network::Movement::Through)
                })
                .count();
            assert!(turns >= 1, "L-shaped routes must turn");
        }
    }

    #[test]
    fn middle_band_centres_on_large_grids() {
        assert_eq!(middle_band(6), vec![1, 2, 3, 4]);
        assert_eq!(middle_band(4), vec![0, 1, 2, 3]);
        assert_eq!(middle_band(3), vec![0, 1, 2]);
        assert_eq!(middle_band(8), vec![2, 3, 4, 5]);
    }
}
