//! The synthetic grid environment of §VI-A.
//!
//! A `cols × rows` lattice of signalized intersections 200 m apart.
//! Horizontal roads are **two-lane arterials** (a dedicated left-turn
//! lane plus a shared through/right lane — the paper's realistic shared
//! lane); vertical roads are **one-lane avenues** whose single lane
//! serves every movement. Each boundary intersection is fed by a
//! terminal node that sources and sinks traffic.

use crate::demand::OdFlow;
use crate::error::SimError;
use crate::ids::{Direction, NodeId};
use crate::network::{Lane, Movement, Network, NetworkBuilder};
use crate::scenario::Scenario;
use crate::signal::SignalPlan;

/// Geometry of the synthetic grid.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GridConfig {
    /// Number of intersection columns. The paper uses 6.
    pub cols: usize,
    /// Number of intersection rows. The paper uses 6.
    pub rows: usize,
    /// Distance between adjacent intersections (m). The paper uses 200.
    pub spacing: f64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            cols: 6,
            rows: 6,
            spacing: 200.0,
        }
    }
}

/// A built grid: the network plus terminal lookup tables.
#[derive(Debug, Clone)]
pub struct Grid {
    config: GridConfig,
    network: Network,
    /// `intersections[col][row]`.
    intersections: Vec<Vec<NodeId>>,
    west_terminals: Vec<NodeId>,
    east_terminals: Vec<NodeId>,
    south_terminals: Vec<NodeId>,
    north_terminals: Vec<NodeId>,
}

/// Lanes of a two-lane arterial approach: dedicated left + shared
/// through/right (paper Fig. 2). Public because the scenario compiler
/// reuses the same lane idiom for its generated topologies.
pub fn arterial_lanes() -> Vec<Lane> {
    vec![
        Lane::new(&[Movement::Left]),
        Lane::new(&[Movement::Through, Movement::Right]),
    ]
}

/// The single fully shared lane of a one-lane avenue.
pub fn avenue_lanes() -> Vec<Lane> {
    vec![Lane::all_movements()]
}

impl Grid {
    /// Builds the grid network.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate dimensions.
    pub fn build(config: GridConfig) -> Result<Self, SimError> {
        if config.cols < 2 || config.rows < 2 {
            return Err(SimError::InvalidConfig(
                "grid needs at least 2x2 intersections".into(),
            ));
        }
        if config.spacing <= 0.0 {
            return Err(SimError::InvalidConfig("grid spacing must be > 0".into()));
        }
        let mut b = NetworkBuilder::new();
        let s = config.spacing;
        let mut intersections = vec![Vec::with_capacity(config.rows); config.cols];
        for (col, column) in intersections.iter_mut().enumerate() {
            for row in 0..config.rows {
                column.push(b.add_node(col as f64 * s, row as f64 * s, true));
            }
        }
        // Horizontal arterials between adjacent intersections.
        for cols in intersections.windows(2) {
            for (&a, &c) in cols[0].iter().zip(&cols[1]) {
                b.add_link(a, c, Direction::East, arterial_lanes())?;
                b.add_link(c, a, Direction::West, arterial_lanes())?;
            }
        }
        // Vertical avenues.
        for column in &intersections {
            for pair in column.windows(2) {
                let (a, c) = (pair[0], pair[1]);
                b.add_link(a, c, Direction::North, avenue_lanes())?;
                b.add_link(c, a, Direction::South, avenue_lanes())?;
            }
        }
        // Boundary terminals.
        let mut west_terminals = Vec::with_capacity(config.rows);
        let mut east_terminals = Vec::with_capacity(config.rows);
        let (first_col, last_col) = (&intersections[0], &intersections[config.cols - 1]);
        for (row, (&wi, &ei)) in first_col.iter().zip(last_col).enumerate() {
            let w = b.add_node(-s, row as f64 * s, false);
            let e = b.add_node(config.cols as f64 * s, row as f64 * s, false);
            b.add_link(w, wi, Direction::East, arterial_lanes())?;
            b.add_link(wi, w, Direction::West, arterial_lanes())?;
            b.add_link(e, ei, Direction::West, arterial_lanes())?;
            b.add_link(ei, e, Direction::East, arterial_lanes())?;
            west_terminals.push(w);
            east_terminals.push(e);
        }
        let mut south_terminals = Vec::with_capacity(config.cols);
        let mut north_terminals = Vec::with_capacity(config.cols);
        for (col, column) in intersections.iter().enumerate() {
            let (&si, &ni) = (&column[0], &column[config.rows - 1]);
            let so = b.add_node(col as f64 * s, -s, false);
            let no = b.add_node(col as f64 * s, config.rows as f64 * s, false);
            b.add_link(so, si, Direction::North, avenue_lanes())?;
            b.add_link(si, so, Direction::South, avenue_lanes())?;
            b.add_link(no, ni, Direction::South, avenue_lanes())?;
            b.add_link(ni, no, Direction::North, avenue_lanes())?;
            south_terminals.push(so);
            north_terminals.push(no);
        }
        Ok(Grid {
            config,
            network: b.build()?,
            intersections,
            west_terminals,
            east_terminals,
            south_terminals,
            north_terminals,
        })
    }

    /// Grid geometry.
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Intersection at `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn intersection(&self, col: usize, row: usize) -> NodeId {
        self.intersections[col][row]
    }

    /// Terminal west of row `row` (vehicles entering here travel east).
    pub fn west_terminal(&self, row: usize) -> NodeId {
        self.west_terminals[row]
    }

    /// Terminal east of row `row`.
    pub fn east_terminal(&self, row: usize) -> NodeId {
        self.east_terminals[row]
    }

    /// Terminal south of column `col`.
    pub fn south_terminal(&self, col: usize) -> NodeId {
        self.south_terminals[col]
    }

    /// Terminal north of column `col`.
    pub fn north_terminal(&self, col: usize) -> NodeId {
        self.north_terminals[col]
    }

    /// The grid's boundary terminals as the topology-agnostic
    /// [`Boundary`] view the flow patterns address.
    pub fn boundary(&self) -> crate::scenario::Boundary {
        crate::scenario::Boundary {
            west: self.west_terminals.clone(),
            east: self.east_terminals.clone(),
            south: self.south_terminals.clone(),
            north: self.north_terminals.clone(),
        }
    }

    /// Builds the four-phase signal plans for every intersection.
    ///
    /// # Errors
    ///
    /// Propagates plan-construction failures (cannot happen on a valid
    /// grid).
    pub fn signal_plans(&self) -> Result<Vec<SignalPlan>, SimError> {
        let mut plans = Vec::new();
        for column in &self.intersections {
            for &node in column {
                plans.push(SignalPlan::four_phase(&self.network, node)?);
            }
        }
        Ok(plans)
    }

    /// Assembles a scenario from this grid and the given flows.
    ///
    /// # Errors
    ///
    /// Propagates scenario validation failures.
    pub fn scenario(
        &self,
        name: impl Into<String>,
        flows: Vec<OdFlow>,
    ) -> Result<Scenario, SimError> {
        Scenario::new(name, self.network.clone(), self.signal_plans()?, flows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::shortest_route;

    #[test]
    fn six_by_six_grid_dimensions() {
        let g = Grid::build(GridConfig::default()).unwrap();
        // 36 intersections + 24 terminals.
        assert_eq!(g.network().num_nodes(), 60);
        assert_eq!(g.network().signalized_nodes().len(), 36);
        // Horizontal: 5*6 pairs * 2 + vertical 6*5 * 2 + boundary 24 * 2.
        assert_eq!(g.network().num_links(), 60 + 60 + 48);
    }

    #[test]
    fn every_intersection_has_four_approaches_and_four_phases() {
        let g = Grid::build(GridConfig::default()).unwrap();
        for col in 0..6 {
            for row in 0..6 {
                let n = g.intersection(col, row);
                assert_eq!(g.network().incoming(n).len(), 4);
                assert_eq!(g.network().outgoing(n).len(), 4);
            }
        }
        for plan in g.signal_plans().unwrap() {
            assert_eq!(plan.num_phases(), 4);
        }
    }

    #[test]
    fn arterials_have_two_lanes_and_avenues_one() {
        let g = Grid::build(GridConfig::default()).unwrap();
        for link in g.network().links() {
            match link.direction() {
                Direction::East | Direction::West => assert_eq!(link.num_lanes(), 2),
                Direction::North | Direction::South => assert_eq!(link.num_lanes(), 1),
            }
        }
    }

    #[test]
    fn straight_route_crosses_the_whole_grid() {
        let g = Grid::build(GridConfig::default()).unwrap();
        let route =
            shortest_route(g.network(), g.west_terminal(2), g.east_terminal(2), 13.89).unwrap();
        // Terminal link + 5 internal + exit link = 7 links.
        assert_eq!(route.len(), 7);
    }

    #[test]
    fn turning_route_exists() {
        let g = Grid::build(GridConfig::default()).unwrap();
        let route =
            shortest_route(g.network(), g.west_terminal(1), g.south_terminal(3), 13.89).unwrap();
        assert!(route.len() >= 2);
    }

    #[test]
    fn interior_intersection_has_four_one_hop_and_eight_two_hop_neighbors() {
        let g = Grid::build(GridConfig::default()).unwrap();
        let center = g.intersection(2, 2);
        assert_eq!(g.network().signalized_neighbors(center).len(), 4);
        assert_eq!(g.network().two_hop_signalized_neighbors(center).len(), 8);
    }

    #[test]
    fn corner_intersection_has_two_one_hop_neighbors() {
        let g = Grid::build(GridConfig::default()).unwrap();
        let corner = g.intersection(0, 0);
        assert_eq!(g.network().signalized_neighbors(corner).len(), 2);
        assert_eq!(g.network().two_hop_signalized_neighbors(corner).len(), 3);
    }

    #[test]
    fn degenerate_grid_is_rejected() {
        assert!(Grid::build(GridConfig {
            cols: 1,
            rows: 6,
            spacing: 200.0
        })
        .is_err());
    }
}
