//! Complete simulation scenarios: network + signal plans + demand.
//!
//! The paper evaluates on two environments, both rebuilt here:
//!
//! * [`grid`] — the 6×6 synthetic grid with two-lane arterials and
//!   one-lane avenues (§VI-A), together with the five traffic flow
//!   [`patterns`] of Fig. 6;
//! * [`monaco`] — a heterogeneous 30-intersection network standing in
//!   for the paper's Monaco scenario (§VI-D).

pub mod grid;
pub mod monaco;
pub mod patterns;

use crate::demand::OdFlow;
use crate::error::SimError;
use crate::ids::NodeId;
use crate::network::Network;
use crate::signal::SignalPlan;

/// A self-contained simulation scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name (used in experiment reports).
    pub name: String,
    /// The road network.
    pub network: Network,
    /// One plan per signalized intersection; the order here is the
    /// canonical agent order.
    pub signal_plans: Vec<SignalPlan>,
    /// Demand streams.
    pub flows: Vec<OdFlow>,
}

impl Scenario {
    /// Assembles and validates a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if a signal plan references a
    /// non-signalized or duplicate node, or [`SimError::UnknownNode`] if
    /// a flow endpoint is out of range.
    pub fn new(
        name: impl Into<String>,
        network: Network,
        signal_plans: Vec<SignalPlan>,
        flows: Vec<OdFlow>,
    ) -> Result<Self, SimError> {
        let mut seen = std::collections::HashSet::new();
        for plan in &signal_plans {
            let node = plan.node();
            if node.index() >= network.num_nodes() {
                return Err(SimError::UnknownNode(node));
            }
            if !network.node(node).is_signalized() {
                return Err(SimError::InvalidConfig(format!(
                    "signal plan attached to non-signalized node {node}"
                )));
            }
            if !seen.insert(node) {
                return Err(SimError::InvalidConfig(format!(
                    "duplicate signal plan for node {node}"
                )));
            }
        }
        for flow in &flows {
            for node in [flow.origin, flow.destination] {
                if node.index() >= network.num_nodes() {
                    return Err(SimError::UnknownNode(node));
                }
            }
        }
        Ok(Scenario {
            name: name.into(),
            network,
            signal_plans,
            flows,
        })
    }

    /// The signalized intersections in agent order.
    pub fn agents(&self) -> Vec<NodeId> {
        self.signal_plans.iter().map(|p| p.node()).collect()
    }

    /// Number of controlled intersections.
    pub fn num_agents(&self) -> usize {
        self.signal_plans.len()
    }

    /// Replaces the demand, keeping network and plans — used to evaluate
    /// a policy trained on one flow pattern against another (§VI-C).
    pub fn with_flows(&self, name: impl Into<String>, flows: Vec<OdFlow>) -> Scenario {
        Scenario {
            name: name.into(),
            network: self.network.clone(),
            signal_plans: self.signal_plans.clone(),
            flows,
        }
    }
}
