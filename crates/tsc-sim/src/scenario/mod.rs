//! Complete simulation scenarios: network + signal plans + demand.
//!
//! The paper evaluates on two environments, both rebuilt here:
//!
//! * [`grid`] — the 6×6 synthetic grid with two-lane arterials and
//!   one-lane avenues (§VI-A), together with the five traffic flow
//!   [`patterns`] of Fig. 6;
//! * the heterogeneous Monaco-style network of §VI-D now lives in the
//!   `tsc-scenario` crate as a compiled spec (`monaco_spec`), which
//!   reproduces the retired builder bit-for-bit.

pub mod grid;
pub mod patterns;

use crate::demand::OdFlow;
use crate::error::SimError;
use crate::ids::NodeId;
use crate::network::Network;
use crate::signal::SignalPlan;

/// FNV-1a 64-bit hasher used to fingerprint compiled scenarios.
///
/// The fingerprint identifies a scenario *structurally* — same network,
/// plans, and demand bits ⇒ same fingerprint — so bench reports and
/// tsc-obs events can attribute every run to an exact world. The same
/// construction backs the checkpoint config fingerprint in the core
/// crate; this copy exists because the dependency points the other way.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Folds a string (as UTF-8 bytes plus a terminator, so `"ab","c"`
    /// and `"a","bc"` hash differently).
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        self.write_bytes(&[0xff]);
    }

    /// Folds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `usize`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds an `f64` by its exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The boundary terminals of a generated network, grouped by the side
/// they sit on: `west`/`east` indexed by row, `south`/`north` by
/// column. This is the surface the flow [`patterns`] address, so any
/// topology that exposes a `Boundary` — the 6×6 grid, a compiled
/// irregular city graph, an arterial corridor — can carry the paper's
/// five demand patterns (see [`patterns::flows_on`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Boundary {
    /// Terminals on the west side, south-to-north (one per row).
    pub west: Vec<NodeId>,
    /// Terminals on the east side, south-to-north (one per row).
    pub east: Vec<NodeId>,
    /// Terminals on the south side, west-to-east (one per column).
    pub south: Vec<NodeId>,
    /// Terminals on the north side, west-to-east (one per column).
    pub north: Vec<NodeId>,
}

impl Boundary {
    /// Number of west/east rows.
    pub fn rows(&self) -> usize {
        self.west.len()
    }

    /// Number of south/north columns.
    pub fn cols(&self) -> usize {
        self.south.len()
    }

    /// Terminal west of row `row` (vehicles entering travel east).
    pub fn west_terminal(&self, row: usize) -> NodeId {
        self.west[row]
    }

    /// Terminal east of row `row`.
    pub fn east_terminal(&self, row: usize) -> NodeId {
        self.east[row]
    }

    /// Terminal south of column `col`.
    pub fn south_terminal(&self, col: usize) -> NodeId {
        self.south[col]
    }

    /// Terminal north of column `col`.
    pub fn north_terminal(&self, col: usize) -> NodeId {
        self.north[col]
    }

    /// All terminals, west → east → south → north.
    pub fn all(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(
            self.west.len() + self.east.len() + self.south.len() + self.north.len(),
        );
        out.extend_from_slice(&self.west);
        out.extend_from_slice(&self.east);
        out.extend_from_slice(&self.south);
        out.extend_from_slice(&self.north);
        out
    }
}

/// A self-contained simulation scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name (used in experiment reports).
    pub name: String,
    /// The road network.
    pub network: Network,
    /// One plan per signalized intersection; the order here is the
    /// canonical agent order.
    pub signal_plans: Vec<SignalPlan>,
    /// Demand streams.
    pub flows: Vec<OdFlow>,
}

impl Scenario {
    /// Assembles and validates a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if a signal plan references a
    /// non-signalized or duplicate node, or [`SimError::UnknownNode`] if
    /// a flow endpoint is out of range.
    pub fn new(
        name: impl Into<String>,
        network: Network,
        signal_plans: Vec<SignalPlan>,
        flows: Vec<OdFlow>,
    ) -> Result<Self, SimError> {
        let mut seen = std::collections::HashSet::new();
        for plan in &signal_plans {
            let node = plan.node();
            if node.index() >= network.num_nodes() {
                return Err(SimError::UnknownNode(node));
            }
            if !network.node(node).is_signalized() {
                return Err(SimError::InvalidConfig(format!(
                    "signal plan attached to non-signalized node {node}"
                )));
            }
            if !seen.insert(node) {
                return Err(SimError::InvalidConfig(format!(
                    "duplicate signal plan for node {node}"
                )));
            }
        }
        for flow in &flows {
            for node in [flow.origin, flow.destination] {
                if node.index() >= network.num_nodes() {
                    return Err(SimError::UnknownNode(node));
                }
            }
        }
        Ok(Scenario {
            name: name.into(),
            network,
            signal_plans,
            flows,
        })
    }

    /// The signalized intersections in agent order.
    pub fn agents(&self) -> Vec<NodeId> {
        self.signal_plans.iter().map(|p| p.node()).collect()
    }

    /// Number of controlled intersections.
    pub fn num_agents(&self) -> usize {
        self.signal_plans.len()
    }

    /// A stable FNV-1a fingerprint of the scenario's full structural
    /// content: name, every node (position bits, signalization), every
    /// link (endpoints, direction, length bits, per-lane movements),
    /// every signal plan (phases as *sorted* permitted pairs — phases
    /// store a set, so ordering is normalized here), and every flow
    /// (endpoints plus exact profile control-point bits).
    ///
    /// Two scenarios compare equal bit-for-bit on the simulation path
    /// iff their fingerprints agree; bench reports embed this value so
    /// every run is attributable to an exact compiled world.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(&self.name);
        h.write_usize(self.network.num_nodes());
        for node in self.network.nodes() {
            let (x, y) = node.position();
            h.write_f64(x);
            h.write_f64(y);
            h.write_u64(u64::from(node.is_signalized()));
        }
        h.write_usize(self.network.num_links());
        for link in self.network.links() {
            h.write_usize(link.from().index());
            h.write_usize(link.to().index());
            h.write_usize(link.direction().index());
            h.write_f64(link.length());
            h.write_usize(link.num_lanes());
            for lane in link.lanes() {
                h.write_usize(lane.movements().len());
                for m in lane.movements() {
                    h.write_usize(m.index());
                }
            }
        }
        h.write_usize(self.signal_plans.len());
        for plan in &self.signal_plans {
            h.write_usize(plan.node().index());
            h.write_usize(plan.num_phases());
            for phase in plan.phases() {
                let mut pairs: Vec<(usize, usize)> = phase
                    .permitted()
                    .map(|(l, m)| (l.index(), m.index()))
                    .collect();
                pairs.sort_unstable();
                h.write_usize(pairs.len());
                for (l, m) in pairs {
                    h.write_usize(l);
                    h.write_usize(m);
                }
            }
        }
        h.write_usize(self.flows.len());
        for flow in &self.flows {
            h.write_usize(flow.origin.index());
            h.write_usize(flow.destination.index());
            let points = flow.profile.points();
            h.write_usize(points.len());
            for &(t, r) in points {
                h.write_f64(t);
                h.write_f64(r);
            }
        }
        h.finish()
    }

    /// Replaces the demand, keeping network and plans — used to evaluate
    /// a policy trained on one flow pattern against another (§VI-C).
    pub fn with_flows(&self, name: impl Into<String>, flows: Vec<OdFlow>) -> Scenario {
        Scenario {
            name: name.into(),
            network: self.network.clone(),
            signal_plans: self.signal_plans.clone(),
            flows,
        }
    }
}
