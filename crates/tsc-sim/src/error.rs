//! Error types for network construction and simulation control.

use std::error::Error;
use std::fmt;

use crate::ids::{LinkId, NodeId};

/// Errors produced while building a [`Network`](crate::network::Network)
/// or driving a [`Simulation`](crate::sim::Simulation).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A node identifier referenced an index outside the network.
    UnknownNode(NodeId),
    /// A link identifier referenced an index outside the network.
    UnknownLink(LinkId),
    /// A link was declared between identical endpoints.
    SelfLoop(NodeId),
    /// A requested phase index is outside the node's phase plan.
    InvalidPhase {
        /// The intersection whose plan was violated.
        node: NodeId,
        /// The out-of-range phase index.
        phase: usize,
        /// Number of phases in the plan.
        num_phases: usize,
    },
    /// The node has no signal plan (it is not a signalized intersection).
    NotSignalized(NodeId),
    /// No route exists between the given origin and destination.
    NoRoute {
        /// Trip origin.
        from: NodeId,
        /// Trip destination.
        to: NodeId,
    },
    /// A vehicle's route contains consecutive links that are not joined
    /// by any legal turning movement — a malformed scenario whose
    /// routes were not produced by the router.
    DisconnectedRoute {
        /// The link the vehicle is on.
        from: LinkId,
        /// The next route link, unreachable from `from`.
        to: LinkId,
    },
    /// An action vector did not match the number of controlled intersections.
    ActionLengthMismatch {
        /// Actions supplied by the caller.
        got: usize,
        /// Signalized intersections in the scenario.
        expected: usize,
    },
    /// A configuration value was outside its valid range.
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownNode(n) => write!(f, "unknown node {n}"),
            SimError::UnknownLink(l) => write!(f, "unknown link {l}"),
            SimError::SelfLoop(n) => write!(f, "link endpoints are the same node {n}"),
            SimError::InvalidPhase {
                node,
                phase,
                num_phases,
            } => write!(
                f,
                "phase {phase} out of range for node {node} with {num_phases} phases"
            ),
            SimError::NotSignalized(n) => write!(f, "node {n} is not signalized"),
            SimError::NoRoute { from, to } => write!(f, "no route from {from} to {to}"),
            SimError::DisconnectedRoute { from, to } => write!(
                f,
                "route links {from} and {to} are not joined by a legal turn"
            ),
            SimError::ActionLengthMismatch { got, expected } => write!(
                f,
                "got {got} actions but scenario has {expected} signalized intersections"
            ),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SimError::NoRoute {
            from: NodeId(1),
            to: NodeId(2),
        };
        assert_eq!(e.to_string(), "no route from n1 to n2");
        let e = SimError::InvalidPhase {
            node: NodeId(0),
            phase: 9,
            num_phases: 4,
        };
        assert!(e.to_string().contains("phase 9"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
