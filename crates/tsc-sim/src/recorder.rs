//! Time-series recording of simulation state.
//!
//! A [`Recorder`] samples network-level aggregates (and optionally
//! per-link queues) at a fixed period while a simulation runs, and
//! renders the series as CSV — the raw material for the time-series
//! plots in the paper's figures and for debugging controller behavior.

use std::fmt::Write as _;

use crate::ids::LinkId;
use crate::sim::Simulation;

/// One sampled row of network aggregates.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Sample {
    /// Simulation time (s).
    pub time: u32,
    /// Vehicles on the network plus the insertion backlog.
    pub active: usize,
    /// Vehicles waiting to be inserted.
    pub backlog: usize,
    /// Completed trips so far.
    pub finished: usize,
    /// Mean intersection pressure over signalized nodes.
    pub mean_pressure: f64,
    /// Mean of per-intersection max head waits (s).
    pub mean_max_wait: f64,
    /// Total halting vehicles within detector range.
    pub total_halting: f64,
}

/// Periodic sampler of simulation state.
#[derive(Debug, Clone)]
pub struct Recorder {
    period: u32,
    samples: Vec<Sample>,
    /// Links whose queue length is tracked individually.
    tracked_links: Vec<LinkId>,
    link_series: Vec<Vec<usize>>,
}

impl Recorder {
    /// Creates a recorder sampling every `period` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u32) -> Self {
        assert!(period > 0, "period must be positive");
        Recorder {
            period,
            samples: Vec::new(),
            tracked_links: Vec::new(),
            link_series: Vec::new(),
        }
    }

    /// Additionally tracks the queue length of `link` at each sample.
    pub fn track_link(&mut self, link: LinkId) -> &mut Self {
        self.tracked_links.push(link);
        self.link_series.push(Vec::new());
        self
    }

    /// The sampling period (s).
    pub fn period(&self) -> u32 {
        self.period
    }

    /// The collected samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Records the current state if the simulation time falls on the
    /// sampling grid (call after every [`Simulation::step`]). Returns
    /// `true` if a sample was taken.
    pub fn maybe_sample(&mut self, sim: &Simulation) -> bool {
        if !sim.time().is_multiple_of(self.period) {
            return false;
        }
        let obs = sim.observe_all();
        let n = obs.len().max(1) as f64;
        let sample = Sample {
            time: sim.time(),
            active: sim.active_vehicles(),
            backlog: sim.backlog_vehicles(),
            finished: sim.metrics().finished(),
            mean_pressure: obs.iter().map(|o| o.pressure()).sum::<f64>() / n,
            mean_max_wait: obs.iter().map(|o| o.max_wait()).sum::<f64>() / n,
            total_halting: obs.iter().map(|o| o.total_halting()).sum(),
        };
        self.samples.push(sample);
        for (i, &l) in self.tracked_links.iter().enumerate() {
            self.link_series[i].push(sim.link_queue(l));
        }
        true
    }

    /// Renders the series as CSV (aggregates first, then one column per
    /// tracked link).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("time,active,backlog,finished,mean_pressure,mean_max_wait,total_halting");
        for l in &self.tracked_links {
            let _ = write!(out, ",queue_{l}");
        }
        let _ = writeln!(out);
        for (row, s) in self.samples.iter().enumerate() {
            let _ = write!(
                out,
                "{},{},{},{},{:.3},{:.3},{:.1}",
                s.time,
                s.active,
                s.backlog,
                s.finished,
                s.mean_pressure,
                s.mean_max_wait,
                s.total_halting
            );
            for series in &self.link_series {
                let _ = write!(out, ",{}", series[row]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Clears all recorded data (keeps tracked links).
    pub fn clear(&mut self) {
        self.samples.clear();
        for s in &mut self.link_series {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{ArrivalModel, FlowProfile, OdFlow};
    use crate::ids::Direction;
    use crate::network::{Lane, NetworkBuilder};
    use crate::scenario::Scenario;
    use crate::signal::SignalPlan;
    use crate::sim::SimConfig;

    fn tiny_sim() -> Simulation {
        let mut b = NetworkBuilder::new();
        let c = b.add_node(0.0, 0.0, true);
        let e = b.add_node(200.0, 0.0, false);
        let w = b.add_node(-200.0, 0.0, false);
        let n = b.add_node(0.0, 200.0, false);
        let s_t = b.add_node(0.0, -200.0, false);
        for (t, d) in [
            (n, Direction::South),
            (e, Direction::West),
            (s_t, Direction::North),
            (w, Direction::East),
        ] {
            b.add_link(t, c, d, vec![Lane::all_movements()]).unwrap();
            b.add_link(c, t, d.opposite(), vec![Lane::all_movements()])
                .unwrap();
        }
        let network = b.build().unwrap();
        let plan = SignalPlan::four_phase(&network, c).unwrap();
        let flows = vec![OdFlow::new(w, e, FlowProfile::constant(720.0, 0.0, 200.0))];
        let scenario = Scenario::new("rec", network, vec![plan], flows).unwrap();
        Simulation::new(
            &scenario,
            SimConfig {
                arrival_model: ArrivalModel::Deterministic,
                ..SimConfig::default()
            },
            0,
        )
        .unwrap()
    }

    #[test]
    fn samples_on_the_period_grid() {
        let mut sim = tiny_sim();
        let mut rec = Recorder::new(10);
        for _ in 0..100 {
            sim.step().unwrap();
            rec.maybe_sample(&sim);
        }
        assert_eq!(rec.samples().len(), 10);
        assert!(rec.samples().iter().all(|s| s.time % 10 == 0));
    }

    #[test]
    fn tracked_link_series_aligns_with_samples() {
        let mut sim = tiny_sim();
        let mut rec = Recorder::new(25);
        rec.track_link(crate::ids::LinkId(6)); // w -> c entry link
        for _ in 0..200 {
            sim.step().unwrap();
            rec.maybe_sample(&sim);
        }
        let csv = rec.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].ends_with("queue_l6"));
        assert_eq!(lines.len() - 1, rec.samples().len());
        // Red light (phase 0 is NS) means the tracked queue grows.
        let last: usize = lines
            .last()
            .unwrap()
            .rsplit(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(last > 0, "queue visible in CSV: {csv}");
    }

    #[test]
    fn clear_resets_data_but_keeps_tracking() {
        let mut sim = tiny_sim();
        let mut rec = Recorder::new(5);
        rec.track_link(crate::ids::LinkId(6));
        for _ in 0..20 {
            sim.step().unwrap();
            rec.maybe_sample(&sim);
        }
        rec.clear();
        assert!(rec.samples().is_empty());
        sim.step().unwrap();
        for _ in 0..5 {
            sim.step().unwrap();
            rec.maybe_sample(&sim);
        }
        assert!(!rec.samples().is_empty());
    }

    #[test]
    fn aggregates_reflect_network_state() {
        let mut sim = tiny_sim();
        let mut rec = Recorder::new(50);
        for _ in 0..150 {
            sim.step().unwrap();
            rec.maybe_sample(&sim);
        }
        let last = rec.samples().last().unwrap();
        assert!(last.active > 0);
        assert!(last.total_halting > 0.0, "red light builds queues");
    }
}
