//! Differential parity harness: legacy tick stepper vs. event core.
//!
//! The discrete-event engine (DESIGN.md §12) replaces the per-second
//! hot loop but keeps the *observable* contract at the 1 s boundary
//! bit-for-bit: detector aggregates, rewards, metrics, chaos-fault
//! semantics and the RNG stream must all agree with the legacy stepper
//! retained behind the `legacy-oracle` feature. This harness runs both
//! engines in lockstep over every flow pattern, with and without chaos
//! plans, and asserts step-level agreement on every stream the rest of
//! the stack consumes — plus a proptest generator over random demand
//! programs, chaos plans and action schedules.
//!
//! Run it alone with `cargo test -p tsc-sim --test parity`.

#![cfg(feature = "legacy-oracle")]

use proptest::prelude::*;
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{ChaosPlan, LinkId, LinkSel, NodeSel, Scenario, SimConfig, Simulation, Window};

const PATTERNS: [FlowPattern; 5] = [
    FlowPattern::One,
    FlowPattern::Two,
    FlowPattern::Three,
    FlowPattern::Four,
    FlowPattern::Five,
];

fn grid_scn(cols: usize, rows: usize, pattern: FlowPattern, cfg: &PatternConfig) -> Scenario {
    let grid = Grid::build(GridConfig {
        cols,
        rows,
        spacing: 200.0,
    })
    .unwrap();
    let f = flows(&grid, pattern, cfg).unwrap();
    grid.scenario("parity", f).unwrap()
}

/// Steps `legacy` and `event` in lockstep for `horizon` seconds with a
/// deterministic rotating phase schedule, asserting after every tick
/// that every externally observable stream is identical: full
/// [`tsc_sim::IntersectionObs`] vectors, reward bits, metrics counters
/// and averages (bit compare), vehicle counts, and per-link
/// queue/occupancy.
fn assert_lockstep(
    scenario: &Scenario,
    config: SimConfig,
    seed: u64,
    chaos: &ChaosPlan,
    horizon: u32,
    phase_period: u32,
) {
    let mut legacy = Simulation::with_chaos_legacy(scenario, config, seed, chaos.clone()).unwrap();
    let mut event = Simulation::with_chaos(scenario, config, seed, chaos.clone()).unwrap();
    assert!(!legacy.is_event_core());
    assert!(event.is_event_core());
    let agents = scenario.agents();
    let n_links = scenario.network.num_links();
    for t in 0..horizon {
        if t % phase_period == 0 {
            for (i, &node) in agents.iter().enumerate() {
                let phase =
                    ((t / phase_period) as usize + i) % scenario.signal_plans[i].num_phases();
                legacy.request_phase(node, phase).unwrap();
                event.request_phase(node, phase).unwrap();
            }
        }
        legacy.step().unwrap();
        event.step().unwrap();

        assert_eq!(legacy.time(), event.time());
        assert_eq!(
            legacy.active_vehicles(),
            event.active_vehicles(),
            "active vehicles diverged at t={t}"
        );
        assert_eq!(
            legacy.backlog_vehicles(),
            event.backlog_vehicles(),
            "backlog diverged at t={t}"
        );
        for li in 0..n_links {
            let id = LinkId(li);
            assert_eq!(
                legacy.link_queue(id),
                event.link_queue(id),
                "queue length diverged on link {li} at t={t}"
            );
            assert_eq!(
                legacy.link_occupancy(id),
                event.link_occupancy(id),
                "occupancy diverged on link {li} at t={t}"
            );
        }

        let lo = legacy.observe_all();
        let eo = event.observe_all();
        assert_eq!(lo, eo, "observations diverged at t={t}");
        for (a, b) in lo.iter().zip(&eo) {
            assert_eq!(
                a.reward().to_bits(),
                b.reward().to_bits(),
                "reward bits diverged at t={t}"
            );
        }

        let (lm, em) = (legacy.metrics(), event.metrics());
        // Vehicle conservation on the event core: every spawned
        // vehicle is either finished or still active (on the network
        // or in the insertion backlog, which `active_vehicles`
        // includes).
        assert_eq!(
            em.spawned(),
            em.finished() + event.active_vehicles(),
            "vehicle conservation violated at t={t}"
        );
        assert_eq!(lm.spawned(), em.spawned(), "spawned diverged at t={t}");
        assert_eq!(lm.inserted(), em.inserted(), "inserted diverged at t={t}");
        assert_eq!(lm.finished(), em.finished(), "finished diverged at t={t}");
        assert_eq!(
            lm.avg_waiting_time().to_bits(),
            em.avg_waiting_time().to_bits(),
            "avg waiting time bits diverged at t={t}"
        );
        assert_eq!(
            legacy.avg_travel_time().to_bits(),
            event.avg_travel_time().to_bits(),
            "avg travel time bits diverged at t={t}"
        );
    }
}

/// A plan layering every sensing and actuation fault kind so the
/// parity sweep exercises the chaos paths of both engines (comms
/// faults live above the simulator and are exercised elsewhere).
fn harsh_chaos(scenario: &Scenario) -> ChaosPlan {
    let node0 = scenario.agents()[0];
    ChaosPlan::default()
        .sensor_dropout(Window::new(30, 200), LinkSel::All, 0.3)
        .sensor_noise(Window::new(50, 250), LinkSel::All, 2.0)
        .sensor_bias(Window::new(0, 400), LinkSel::One(LinkId(0)), 3.0)
        .sensor_stuck(Window::new(100, 160), LinkSel::All)
        .command_loss(Window::new(40, 220), NodeSel::All, 0.5)
        .stuck_phase(Window::new(120, 180), NodeSel::One(node0))
        .all_red(Window::new(200, 230), NodeSel::All)
}

#[test]
fn parity_all_flow_patterns_fault_free() {
    for (i, pattern) in PATTERNS.into_iter().enumerate() {
        let scenario = grid_scn(6, 6, pattern, &PatternConfig::default());
        assert_lockstep(
            &scenario,
            SimConfig::default(),
            0xC0FFEE + i as u64,
            &ChaosPlan::default(),
            600,
            10,
        );
    }
}

#[test]
fn parity_all_flow_patterns_under_chaos() {
    for (i, pattern) in PATTERNS.into_iter().enumerate() {
        let scenario = grid_scn(4, 4, pattern, &PatternConfig::default());
        let chaos = harsh_chaos(&scenario);
        assert_lockstep(
            &scenario,
            SimConfig::default(),
            7 + i as u64,
            &chaos,
            400,
            7,
        );
    }
}

#[test]
fn parity_under_heavy_uniform_demand() {
    // Saturate a small grid so spillback, insertion backlog and
    // head-of-line blocking are all exercised, not just free flow.
    let cfg = PatternConfig {
        uniform_we: 900.0,
        uniform_sn: 700.0,
        ..PatternConfig::default()
    };
    let scenario = grid_scn(3, 3, FlowPattern::Five, &cfg);
    assert_lockstep(
        &scenario,
        SimConfig::default(),
        99,
        &ChaosPlan::default(),
        500,
        13,
    );
}

/// Regression: the legacy stepper drains the insertion backlog by
/// iterating a `HashMap` in hash order, which is only benign because
/// per-link insertions are independent; the event core drains entry
/// links in ascending id order instead. This pins the per-link backlog
/// evolution of both engines against each other on a scenario where
/// several entry links are backlogged *simultaneously*, so any hidden
/// cross-link coupling (shared capacity, RNG draws, metric updates)
/// in either drain order would diverge here.
#[test]
fn backlog_drain_order_is_immaterial() {
    // Short blocks -> tiny link capacity; heavy two-axis demand ->
    // multiple saturated entry links at once.
    let grid = Grid::build(GridConfig {
        cols: 3,
        rows: 3,
        spacing: 60.0,
    })
    .unwrap();
    let cfg = PatternConfig {
        uniform_we: 1200.0,
        uniform_sn: 1100.0,
        ..PatternConfig::default()
    };
    let f = flows(&grid, FlowPattern::Five, &cfg).unwrap();
    let scenario = grid.scenario("backlog-order", f).unwrap();

    let config = SimConfig::default();
    let mut legacy = Simulation::new_legacy(&scenario, config, 4242).unwrap();
    let mut event = Simulation::new(&scenario, config, 4242).unwrap();
    let n_links = scenario.network.num_links();
    let mut max_backlogged_links = 0;
    for t in 0..400u32 {
        legacy.step().unwrap();
        event.step().unwrap();
        let mut backlogged = 0;
        for li in 0..n_links {
            let id = LinkId(li);
            let lb = legacy.link_backlog(id);
            assert_eq!(
                lb,
                event.link_backlog(id),
                "per-link backlog diverged on link {li} at t={t}"
            );
            backlogged += usize::from(lb > 0);
        }
        max_backlogged_links = max_backlogged_links.max(backlogged);
        assert_eq!(legacy.metrics().inserted(), event.metrics().inserted());
        assert_eq!(legacy.backlog_vehicles(), event.backlog_vehicles());
    }
    assert!(
        max_backlogged_links >= 2,
        "scenario must backlog several entry links at once to exercise \
         drain-order independence (saw at most {max_backlogged_links})"
    );
}

#[test]
fn event_core_is_bit_reproducible() {
    let scenario = grid_scn(4, 4, FlowPattern::Three, &PatternConfig::default());
    let chaos = harsh_chaos(&scenario);
    let digest = |seed: u64| -> u64 {
        let mut sim =
            Simulation::with_chaos(&scenario, SimConfig::default(), seed, chaos.clone()).unwrap();
        let agents = scenario.agents();
        let mut bits = 0u64;
        for t in 0..400u32 {
            if t % 9 == 0 {
                for (i, &node) in agents.iter().enumerate() {
                    let phase = (t as usize / 9 + i) % scenario.signal_plans[i].num_phases();
                    sim.request_phase(node, phase).unwrap();
                }
            }
            sim.step().unwrap();
            for obs in sim.observe_all() {
                bits = bits
                    .rotate_left(7)
                    .wrapping_add(obs.reward().to_bits())
                    .wrapping_add(obs.incoming.len() as u64);
            }
        }
        bits.wrapping_add(sim.metrics().avg_waiting_time().to_bits())
    };
    assert_eq!(digest(5), digest(5));
    assert_ne!(digest(5), digest(6), "different seeds should diverge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized differential check: random demand program (pattern
    /// and rates), random seed, random action schedule and a random
    /// chaos plan, on a 2x2 grid. Any step-level divergence between
    /// the two engines fails the property.
    #[test]
    fn parity_random_demand_and_chaos(
        seed in 0u64..10_000,
        pat in 0usize..5,
        we in 100.0f64..1000.0,
        sn in 50.0f64..800.0,
        peak in 200.0f64..900.0,
        period in 3u32..20,
        chaos_kind in 0usize..4,
        p in 0.05f64..0.9,
        start in 0u32..150,
        len in 10u32..200,
    ) {
        let cfg = PatternConfig {
            uniform_we: we,
            uniform_sn: sn,
            peak_rate: peak,
            ..PatternConfig::default()
        };
        let scenario = grid_scn(2, 2, PATTERNS[pat], &cfg);
        let w = Window::new(start, start + len);
        let chaos = match chaos_kind {
            0 => ChaosPlan::default(),
            1 => ChaosPlan::default()
                .sensor_dropout(w, LinkSel::All, p)
                .sensor_noise(w, LinkSel::All, 3.0 * p),
            2 => ChaosPlan::default()
                .command_loss(w, NodeSel::All, p)
                .stuck_phase(Window::new(start + 20, start + len), NodeSel::All),
            _ => ChaosPlan::default()
                .all_red(Window::new(start, start + len.min(40)), NodeSel::All)
                .sensor_stuck(w, LinkSel::All),
        };
        assert_lockstep(&scenario, SimConfig::default(), seed, &chaos, 300, period);
    }
}
