//! Integration tests of the chaos engine: scheduled sensing and
//! actuation faults, their exact semantics, and the bit-identity
//! guarantees (empty plan == no plan; same seed + same plan == same
//! trajectory).

use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{ChaosPlan, IntersectionObs, LinkSel, NodeSel, SimConfig, Simulation, Window};

fn small_sim(seed: u64, chaos: ChaosPlan) -> Simulation {
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 150.0,
    })
    .expect("grid");
    let cfg = PatternConfig {
        uniform_we: 600.0,
        uniform_sn: 300.0,
        uniform_end: 600.0,
        ..PatternConfig::default()
    };
    let f = flows(&grid, FlowPattern::Five, &cfg).expect("flows");
    let scenario = grid.scenario("chaos", f).expect("scenario");
    Simulation::with_chaos(&scenario, SimConfig::default(), seed, chaos).expect("sim")
}

/// Everything observable about one step, bit-exactly.
fn fingerprint(sim: &Simulation) -> (u64, usize, usize) {
    let mut bits = 0u64;
    for obs in sim.observe_all() {
        for l in &obs.incoming {
            bits = bits
                .wrapping_mul(31)
                .wrapping_add(l.count.to_bits())
                .wrapping_add(l.halting.to_bits())
                .wrapping_add(l.head_wait.to_bits());
            for h in l.halting_by_movement {
                bits = bits.wrapping_mul(31).wrapping_add(h.to_bits());
            }
        }
        for c in &obs.outgoing_counts {
            bits = bits.wrapping_mul(31).wrapping_add(c.to_bits());
        }
        bits = bits.wrapping_mul(31).wrapping_add(obs.current_phase as u64);
    }
    (bits, sim.active_vehicles(), sim.metrics().finished())
}

fn obs_values_equal(a: &IntersectionObs, b: &IntersectionObs) -> bool {
    a.incoming.iter().zip(&b.incoming).all(|(x, y)| {
        x.count.to_bits() == y.count.to_bits()
            && x.halting.to_bits() == y.halting.to_bits()
            && x.head_wait.to_bits() == y.head_wait.to_bits()
            && x.halting_by_movement
                .iter()
                .zip(&y.halting_by_movement)
                .all(|(p, q)| p.to_bits() == q.to_bits())
    })
}

#[test]
fn empty_plan_is_bit_identical_to_no_plan() {
    let mut plain = small_sim(42, ChaosPlan::default());
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 150.0,
    })
    .unwrap();
    let cfg = PatternConfig {
        uniform_we: 600.0,
        uniform_sn: 300.0,
        uniform_end: 600.0,
        ..PatternConfig::default()
    };
    let f = flows(&grid, FlowPattern::Five, &cfg).unwrap();
    let scenario = grid.scenario("chaos", f).unwrap();
    let mut bare = Simulation::new(&scenario, SimConfig::default(), 42).unwrap();
    for t in 0..300 {
        plain.step().unwrap();
        bare.step().unwrap();
        assert_eq!(fingerprint(&plain), fingerprint(&bare), "t={t}");
    }
}

#[test]
fn same_seed_and_plan_reproduce_bit_for_bit() {
    let plan = ChaosPlan::default()
        .sensor_dropout(Window::new(30, 90), LinkSel::All, 0.4)
        .sensor_noise(Window::new(60, 160), LinkSel::All, 0.3)
        .sensor_bias(Window::new(100, 200), LinkSel::All, 2.0)
        .sensor_stuck(Window::new(150, 220), LinkSel::All)
        .command_loss(Window::new(40, 140), NodeSel::All, 0.5)
        .stuck_phase(Window::new(180, 240), NodeSel::All)
        .all_red(Window::new(250, 280), NodeSel::All);
    let run = |seed: u64| {
        let mut sim = small_sim(seed, plan.clone());
        let agents = sim.signalized();
        let mut trace = Vec::new();
        for t in 0..300u32 {
            for (i, &a) in agents.iter().enumerate() {
                sim.request_phase(a, ((t as usize / 7) + i) % 4).unwrap();
            }
            sim.step().unwrap();
            trace.push(fingerprint(&sim));
        }
        trace
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8), "different seeds diverge under faults");
}

#[test]
fn full_dropout_zeroes_every_incoming_reading() {
    let plan = ChaosPlan::default().sensor_dropout(Window::new(100, 200), LinkSel::All, 1.0);
    let mut sim = small_sim(3, plan);
    for _ in 0..150 {
        sim.step().unwrap();
    }
    let mut total = 0.0;
    for obs in sim.observe_all() {
        for l in &obs.incoming {
            assert_eq!(l.count, 0.0);
            assert_eq!(l.halting, 0.0);
            assert_eq!(l.head_wait, 0.0);
            assert_eq!(l.halting_by_movement, [0.0; 3]);
        }
        total += obs.outgoing_counts.iter().sum::<f64>();
    }
    // Sensing faults do not change the physics: traffic is still there.
    assert!(sim.active_vehicles() > 0);
    let _ = total;
}

#[test]
fn stuck_at_last_freezes_readings_then_releases() {
    let window = Window::new(50, 80);
    let plan = ChaosPlan::default().sensor_stuck(window, LinkSel::All);
    let mut faulty = small_sim(11, plan);
    let mut clean = small_sim(11, ChaosPlan::default());
    let node = faulty.signalized()[0];
    let mut frozen_at: Option<IntersectionObs> = None;
    let mut diverged_inside = false;
    for t in 1..=120u32 {
        faulty.step().unwrap();
        clean.step().unwrap();
        let fo = faulty.observe(node);
        let co = clean.observe(node);
        if t > window.start && t < window.end {
            // Frozen: every reading inside the window equals the first.
            let first = frozen_at.get_or_insert_with(|| fo.clone());
            assert!(obs_values_equal(&fo, first), "frozen at t={t}");
            if !obs_values_equal(&fo, &co) {
                diverged_inside = true;
            }
        } else if t >= window.end || t <= window.start {
            // Outside the window the sensor tracks reality again
            // (physics was never perturbed, so the clean twin agrees).
            assert!(obs_values_equal(&fo, &co), "tracking at t={t}");
        }
    }
    assert!(diverged_inside, "traffic moved while the sensor was stuck");
}

#[test]
fn bias_injects_phantom_vehicles() {
    let plan = ChaosPlan::default().sensor_bias(Window::new(0, 50), LinkSel::All, 3.0);
    let mut sim = small_sim(5, plan);
    sim.step().unwrap();
    // At t=1 the network is still nearly empty: the +3 bias dominates.
    for obs in sim.observe_all() {
        for l in &obs.incoming {
            assert!(l.count >= 3.0, "biased count {}", l.count);
            assert!(l.halting >= 3.0, "biased halting {}", l.halting);
        }
    }
}

#[test]
fn all_red_blocks_every_discharge() {
    let plan = ChaosPlan::default().all_red(Window::new(0, 120), NodeSel::All);
    let mut sim = small_sim(9, plan);
    let agents = sim.signalized();
    for t in 0..200u32 {
        // Keep requesting green phases: the fault must override them.
        for &a in &agents {
            sim.request_phase(a, (t as usize / 5) % 4).unwrap();
        }
        sim.step().unwrap();
        if t < 120 {
            assert_eq!(
                sim.metrics().finished(),
                0,
                "no vehicle can cross an all-red grid (t={t})"
            );
        }
    }
    // After the window clears, traffic flows again.
    assert!(sim.metrics().finished() > 0, "recovered after all-red");
}

#[test]
fn stuck_phase_swallows_requests_but_still_validates() {
    let plan = ChaosPlan::default().stuck_phase(Window::new(10, 100), NodeSel::All);
    let mut sim = small_sim(13, plan);
    let node = sim.signalized()[0];
    for _ in 0..30 {
        sim.step().unwrap();
    }
    let held = sim.observe(node).current_phase;
    // Inside the window: requests are swallowed (but still validated).
    let other = (held + 1) % 4;
    sim.request_phase(node, other).unwrap();
    assert!(sim.request_phase(node, 99).is_err(), "validation still on");
    for _ in 0..20 {
        sim.step().unwrap();
    }
    assert_eq!(sim.observe(node).current_phase, held, "phase held");
    // Past the window the same request goes through.
    for _ in 0..60 {
        sim.step().unwrap();
    }
    sim.request_phase(node, other).unwrap();
    for _ in 0..10 {
        sim.step().unwrap();
    }
    assert_eq!(sim.observe(node).current_phase, other, "released");
}
