//! Property-based tests of simulator invariants.

use proptest::prelude::*;
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{ArrivalModel, LinkId, Movement, NodeId, SimConfig, Simulation};

fn small_sim(rate_scale: f64, seed: u64, stochastic: bool) -> Simulation {
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 150.0,
    })
    .expect("grid");
    let cfg = PatternConfig {
        uniform_we: 300.0 * rate_scale,
        uniform_sn: 90.0 * rate_scale,
        uniform_end: 600.0,
        ..PatternConfig::default()
    };
    let f = flows(&grid, FlowPattern::Five, &cfg).expect("flows");
    let scenario = grid.scenario("prop", f).expect("scenario");
    let sim_cfg = SimConfig {
        arrival_model: if stochastic {
            ArrivalModel::Stochastic
        } else {
            ArrivalModel::Deterministic
        },
        ..SimConfig::default()
    };
    Simulation::new(&scenario, sim_cfg, seed).expect("sim")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// spawned == active + finished at every step, for any demand level,
    /// seed and phase schedule.
    #[test]
    fn vehicle_conservation(
        rate_scale in 0.5f64..4.0,
        seed in 0u64..1000,
        phase_period in 1usize..8,
    ) {
        let mut sim = small_sim(rate_scale, seed, true);
        let agents: Vec<NodeId> = sim.signalized();
        for t in 0..400usize {
            if t % phase_period == 0 {
                let phase = (t / phase_period) % 4;
                for &a in &agents {
                    sim.request_phase(a, phase).unwrap();
                }
            }
            sim.step().unwrap();
            prop_assert_eq!(
                sim.metrics().spawned(),
                sim.active_vehicles() + sim.metrics().finished()
            );
        }
    }

    /// Link occupancy never exceeds capacity (jam density bound).
    #[test]
    fn occupancy_respects_capacity(
        rate_scale in 1.0f64..6.0,
        seed in 0u64..1000,
    ) {
        let mut sim = small_sim(rate_scale, seed, true);
        // 150 m, 7.5 m gap => 20 per lane.
        for _ in 0..400 {
            sim.step().unwrap();
            for link in sim.scenario().network.links() {
                let cap = (link.length() / 7.5).floor().max(1.0) as usize * link.num_lanes();
                prop_assert!(sim.link_occupancy(link.id()) <= cap);
            }
        }
    }

    /// Identical seeds give identical trajectories; metrics are equal.
    #[test]
    fn determinism(seed in 0u64..1000) {
        let run = |seed: u64| {
            let mut sim = small_sim(2.0, seed, true);
            for &a in &sim.signalized() {
                sim.request_phase(a, 2).unwrap();
            }
            for _ in 0..300 {
                sim.step().unwrap();
            }
            (
                sim.metrics().spawned(),
                sim.metrics().finished(),
                sim.avg_travel_time().to_bits(),
                sim.link_queue(LinkId(0)),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Waiting time and travel time are monotone under blocking: an
    /// all-red-ish schedule (never serving east-west) waits at least as
    /// long as always-green east-west for the same seed.
    #[test]
    fn blocking_increases_waiting(seed in 0u64..200) {
        let run = |phase: usize| {
            let mut sim = small_sim(2.0, seed, false);
            for &a in &sim.signalized() {
                sim.request_phase(a, phase).unwrap();
            }
            for _ in 0..400 {
                sim.step().unwrap();
            }
            sim.metrics().avg_waiting_time()
        };
        // Phase 2 = EW through/right (main demand direction); phase 1 =
        // NS left only.
        prop_assert!(run(1) >= run(2));
    }

    /// Vehicle conservation with the backlog term made explicit —
    /// spawned == on-network + insertion backlog + arrived — across
    /// *all five* paper flow patterns (the plain conservation property
    /// above only drives Pattern 5's uniform demand).
    #[test]
    fn vehicle_conservation_with_backlog_across_patterns(
        pattern_idx in 0usize..5,
        rate_scale in 0.5f64..3.0,
        seed in 0u64..1000,
    ) {
        let grid = Grid::build(GridConfig {
            cols: 2,
            rows: 2,
            spacing: 150.0,
        })
        .expect("grid");
        let cfg = PatternConfig {
            peak_rate: 600.0 * rate_scale,
            base_rate: 150.0 * rate_scale,
            uniform_we: 300.0 * rate_scale,
            uniform_sn: 90.0 * rate_scale,
            ..PatternConfig::default()
        };
        let f = flows(&grid, FlowPattern::ALL[pattern_idx], &cfg).expect("flows");
        let scenario = grid.scenario("prop-backlog", f).expect("scenario");
        let mut sim = Simulation::new(&scenario, SimConfig::default(), seed).expect("sim");
        for t in 0..400usize {
            sim.step().unwrap();
            let backlog = sim.backlog_vehicles();
            let on_network = sim.active_vehicles() - backlog;
            prop_assert_eq!(
                sim.metrics().spawned(),
                on_network + backlog + sim.metrics().finished(),
                "t={}: spawned {} != on-network {} + backlog {} + arrived {}",
                t,
                sim.metrics().spawned(),
                on_network,
                backlog,
                sim.metrics().finished()
            );
            prop_assert!(backlog <= sim.metrics().spawned());
        }
    }

    /// Queues on fully-red approaches never shrink: while every
    /// movement of an incoming link is unpermitted (and the signal is
    /// not in yellow clearance), vehicles may join its queue but none
    /// may leave it.
    #[test]
    fn queues_monotone_under_red(
        seed in 0u64..1000,
        held_phase in 0usize..4,
        rate_scale in 1.0f64..4.0,
    ) {
        let mut sim = small_sim(rate_scale, seed, true);
        let agents: Vec<NodeId> = sim.signalized();
        for &a in &agents {
            sim.request_phase(a, held_phase).unwrap();
        }
        // Let the initial yellow clearance (2 s by default) elapse so
        // the held phase is actually showing.
        for _ in 0..5 {
            sim.step().unwrap();
        }
        let network = sim.scenario().network.clone();
        for _ in 0..200usize {
            // Snapshot queues on links that are fully red right now.
            let mut red_queues: Vec<(LinkId, usize)> = Vec::new();
            for &node in &agents {
                let sig = sim.signal(node).expect("signalized");
                if sig.in_yellow() {
                    continue;
                }
                for &link in network.incoming(node) {
                    let all_red = Movement::ALL
                        .iter()
                        .all(|&m| !sig.permits(link, m));
                    if all_red {
                        red_queues.push((link, sim.link_queue(link)));
                    }
                }
            }
            sim.step().unwrap();
            for (link, before) in red_queues {
                let after = sim.link_queue(link);
                prop_assert!(
                    after >= before,
                    "queue on red link {:?} shrank {} -> {}",
                    link,
                    before,
                    after
                );
            }
        }
    }

    /// Observations are bounded by detector range: halting counts can
    /// never exceed range/gap + 1 vehicles per lane.
    #[test]
    fn detector_counts_bounded(
        rate_scale in 2.0f64..6.0,
        seed in 0u64..500,
    ) {
        let mut sim = small_sim(rate_scale, seed, true);
        let max_per_lane = (50.0 / 7.5_f64).floor() + 1.0;
        for _ in 0..300 {
            sim.step().unwrap();
        }
        for obs in sim.observe_all() {
            for link in &obs.incoming {
                let lanes = sim.scenario().network.link(link.link).num_lanes() as f64;
                prop_assert!(link.halting <= max_per_lane * lanes);
                prop_assert!(link.head_wait >= 0.0);
            }
        }
    }

    /// Any chaos plan preserves determinism (same seed + same plan is
    /// bit-identical, observations included) and vehicle conservation
    /// at every step — faults can corrupt what controllers *see* and
    /// *do*, never the physics ledger.
    #[test]
    fn chaos_preserves_determinism_and_conservation(
        seed in 0u64..1000,
        p in 0.0f64..1.0,
        sigma in 0.0f64..0.8,
        delta in 0.0f64..5.0,
        start in 0u32..150,
        len in 1u32..150,
        delay in 1u32..4,
    ) {
        use tsc_sim::{ChaosPlan, LinkSel, NodeSel, AgentSel, Window};
        let w = |s: u32| Window::new(s, s + len);
        let plan = ChaosPlan::default()
            .sensor_dropout(w(start), LinkSel::All, p)
            .sensor_noise(w(start / 2), LinkSel::All, sigma)
            .sensor_bias(w(start + 20), LinkSel::One(LinkId(0)), delta)
            .sensor_stuck(w(start + 40), LinkSel::All)
            .command_loss(w(start), NodeSel::All, p)
            .stuck_phase(w(start + 30), NodeSel::One(NodeId(0)))
            .all_red(w(start + 60), NodeSel::All)
            .message_drop(w(start), AgentSel::All, p)
            .message_delay(w(start), AgentSel::All, delay);
        let run = |seed: u64| {
            let grid = Grid::build(GridConfig {
                cols: 2,
                rows: 2,
                spacing: 150.0,
            })
            .expect("grid");
            let f = flows(&grid, FlowPattern::Five, &PatternConfig::default()).expect("flows");
            let scenario = grid.scenario("chaos-prop", f).expect("scenario");
            let mut sim = Simulation::with_chaos(
                &scenario,
                SimConfig {
                    arrival_model: ArrivalModel::Stochastic,
                    ..SimConfig::default()
                },
                seed,
                plan.clone(),
            )
            .expect("sim");
            let agents = sim.signalized();
            let mut bits = 0u64;
            for t in 0..300u32 {
                for (i, &a) in agents.iter().enumerate() {
                    sim.request_phase(a, ((t as usize / 6) + i) % 4).unwrap();
                }
                sim.step().unwrap();
                // Conservation must hold at every step, faults or not.
                assert_eq!(
                    sim.metrics().spawned(),
                    sim.active_vehicles() + sim.metrics().finished()
                );
                for obs in sim.observe_all() {
                    for l in &obs.incoming {
                        bits = bits
                            .wrapping_mul(31)
                            .wrapping_add(l.count.to_bits())
                            .wrapping_add(l.halting.to_bits())
                            .wrapping_add(l.head_wait.to_bits());
                    }
                    bits = bits.wrapping_mul(31).wrapping_add(obs.current_phase as u64);
                }
            }
            (bits, sim.metrics().spawned(), sim.metrics().finished())
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
