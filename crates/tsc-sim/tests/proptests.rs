//! Property-based tests of simulator invariants.

use proptest::prelude::*;
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{ArrivalModel, LinkId, NodeId, SimConfig, Simulation};

fn small_sim(rate_scale: f64, seed: u64, stochastic: bool) -> Simulation {
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 150.0,
    })
    .expect("grid");
    let cfg = PatternConfig {
        uniform_we: 300.0 * rate_scale,
        uniform_sn: 90.0 * rate_scale,
        uniform_end: 600.0,
        ..PatternConfig::default()
    };
    let f = flows(&grid, FlowPattern::Five, &cfg).expect("flows");
    let scenario = grid.scenario("prop", f).expect("scenario");
    let sim_cfg = SimConfig {
        arrival_model: if stochastic {
            ArrivalModel::Stochastic
        } else {
            ArrivalModel::Deterministic
        },
        ..SimConfig::default()
    };
    Simulation::new(&scenario, sim_cfg, seed).expect("sim")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// spawned == active + finished at every step, for any demand level,
    /// seed and phase schedule.
    #[test]
    fn vehicle_conservation(
        rate_scale in 0.5f64..4.0,
        seed in 0u64..1000,
        phase_period in 1usize..8,
    ) {
        let mut sim = small_sim(rate_scale, seed, true);
        let agents: Vec<NodeId> = sim.signalized();
        for t in 0..400usize {
            if t % phase_period == 0 {
                let phase = (t / phase_period) % 4;
                for &a in &agents {
                    sim.request_phase(a, phase).unwrap();
                }
            }
            sim.step();
            prop_assert_eq!(
                sim.metrics().spawned(),
                sim.active_vehicles() + sim.metrics().finished()
            );
        }
    }

    /// Link occupancy never exceeds capacity (jam density bound).
    #[test]
    fn occupancy_respects_capacity(
        rate_scale in 1.0f64..6.0,
        seed in 0u64..1000,
    ) {
        let mut sim = small_sim(rate_scale, seed, true);
        // 150 m, 7.5 m gap => 20 per lane.
        for _ in 0..400 {
            sim.step();
            for link in sim.scenario().network.links() {
                let cap = (link.length() / 7.5).floor().max(1.0) as usize * link.num_lanes();
                prop_assert!(sim.link_occupancy(link.id()) <= cap);
            }
        }
    }

    /// Identical seeds give identical trajectories; metrics are equal.
    #[test]
    fn determinism(seed in 0u64..1000) {
        let run = |seed: u64| {
            let mut sim = small_sim(2.0, seed, true);
            for &a in &sim.signalized() {
                sim.request_phase(a, 2).unwrap();
            }
            for _ in 0..300 {
                sim.step();
            }
            (
                sim.metrics().spawned(),
                sim.metrics().finished(),
                sim.avg_travel_time().to_bits(),
                sim.link_queue(LinkId(0)),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Waiting time and travel time are monotone under blocking: an
    /// all-red-ish schedule (never serving east-west) waits at least as
    /// long as always-green east-west for the same seed.
    #[test]
    fn blocking_increases_waiting(seed in 0u64..200) {
        let run = |phase: usize| {
            let mut sim = small_sim(2.0, seed, false);
            for &a in &sim.signalized() {
                sim.request_phase(a, phase).unwrap();
            }
            for _ in 0..400 {
                sim.step();
            }
            sim.metrics().avg_waiting_time()
        };
        // Phase 2 = EW through/right (main demand direction); phase 1 =
        // NS left only.
        prop_assert!(run(1) >= run(2));
    }

    /// Observations are bounded by detector range: halting counts can
    /// never exceed range/gap + 1 vehicles per lane.
    #[test]
    fn detector_counts_bounded(
        rate_scale in 2.0f64..6.0,
        seed in 0u64..500,
    ) {
        let mut sim = small_sim(rate_scale, seed, true);
        let max_per_lane = (50.0 / 7.5_f64).floor() + 1.0;
        for _ in 0..300 {
            sim.step();
        }
        for obs in sim.observe_all() {
            for link in &obs.incoming {
                let lanes = sim.scenario().network.link(link.link).num_lanes() as f64;
                prop_assert!(link.halting <= max_per_lane * lanes);
                prop_assert!(link.head_wait >= 0.0);
            }
        }
    }
}
