//! Golden detector/reward trace fixtures.
//!
//! One fixture per [`FlowPattern`], generated from the **legacy** tick
//! stepper (the oracle) and asserted *exactly* — bit-for-bit on every
//! float — against the event core. Unlike the lockstep harness in
//! `tests/parity.rs`, these pin the observable contract against files
//! checked into the repo, so a regression in *either* engine (or an
//! accidental semantic change that happens to keep the two engines in
//! agreement with each other) is caught.
//!
//! Each trace line covers one simulation second:
//!
//! ```text
//! <t> s=<spawned> i=<inserted> f=<finished> b=<backlog> a=<active> \
//!     d=<detector digest> w=<avg-wait f64 bits> r=<reward f64 bits>,...
//! ```
//!
//! The detector digest folds the exact bit patterns of every
//! [`LinkObs`] field, outgoing counts and phase indices of every
//! intersection, so any detector-level divergence flips it.
//!
//! Regenerate after an *intentional* contract change with:
//!
//! ```text
//! cargo test -p tsc-sim --test golden --features legacy-oracle \
//!     -- --ignored regenerate_golden_traces
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{IntersectionObs, Scenario, SimConfig, Simulation};

const HORIZON: u32 = 300;
const PHASE_PERIOD: u32 = 11;

const CASES: [(&str, FlowPattern, u64); 5] = [
    ("pattern_one", FlowPattern::One, 1001),
    ("pattern_two", FlowPattern::Two, 1002),
    ("pattern_three", FlowPattern::Three, 1003),
    ("pattern_four", FlowPattern::Four, 1004),
    ("pattern_five", FlowPattern::Five, 1005),
];

fn scenario(pattern: FlowPattern) -> Scenario {
    let grid = Grid::build(GridConfig {
        cols: 3,
        rows: 3,
        spacing: 200.0,
    })
    .unwrap();
    let f = flows(&grid, pattern, &PatternConfig::default()).unwrap();
    grid.scenario("golden", f).unwrap()
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{name}.golden"))
}

/// Order-sensitive fold of every observable detector bit.
fn detector_digest(obs: &[IntersectionObs]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |x: u64| {
        h = (h ^ x).wrapping_mul(0x0000_0100_0000_01b3);
    };
    for o in obs {
        mix(o.node.0 as u64);
        mix(o.current_phase as u64);
        mix(o.num_phases as u64);
        for l in &o.incoming {
            mix(l.link.0 as u64);
            mix(l.count.to_bits());
            mix(l.halting.to_bits());
            for m in l.halting_by_movement {
                mix(m.to_bits());
            }
            mix(l.head_wait.to_bits());
        }
        for (&c, &l) in o.outgoing_counts.iter().zip(&o.outgoing_links) {
            mix(c.to_bits());
            mix(l.0 as u64);
        }
    }
    h
}

/// Runs `sim` for [`HORIZON`] seconds under the deterministic rotating
/// phase schedule and renders the golden trace text.
fn trace(sim: &mut Simulation, scenario: &Scenario) -> String {
    let agents = scenario.agents();
    let mut out = String::new();
    for t in 0..HORIZON {
        if t % PHASE_PERIOD == 0 {
            for (i, &node) in agents.iter().enumerate() {
                let phase =
                    ((t / PHASE_PERIOD) as usize + i) % scenario.signal_plans[i].num_phases();
                sim.request_phase(node, phase).unwrap();
            }
        }
        sim.step().unwrap();
        let obs = sim.observe_all();
        let m = sim.metrics();
        write!(
            out,
            "{t} s={} i={} f={} b={} a={} d={:016x} w={:016x} r=",
            m.spawned(),
            m.inserted(),
            m.finished(),
            sim.backlog_vehicles(),
            sim.active_vehicles(),
            detector_digest(&obs),
            m.avg_waiting_time().to_bits(),
        )
        .unwrap();
        for (i, o) in obs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "{:016x}", o.reward().to_bits()).unwrap();
        }
        out.push('\n');
    }
    out
}

fn assert_matches_fixture(name: &str, got: &str, engine: &str) {
    let path = fixture_path(name);
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with the \
             regenerate_golden_traces test",
            path.display()
        )
    });
    if got != want {
        for (ln, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(
                g, w,
                "{engine} diverged from {name} golden trace at line {ln}"
            );
        }
        assert_eq!(
            got.lines().count(),
            want.lines().count(),
            "{engine} trace length differs from {name} golden trace"
        );
        panic!("{engine} trace differs from {name} golden trace");
    }
}

/// The event core must reproduce the legacy-generated traces exactly.
#[test]
fn event_core_matches_golden_traces() {
    for (name, pattern, seed) in CASES {
        let scn = scenario(pattern);
        let mut sim = Simulation::new(&scn, SimConfig::default(), seed).unwrap();
        assert!(sim.is_event_core());
        let got = trace(&mut sim, &scn);
        assert_matches_fixture(name, &got, "event core");
    }
}

/// The oracle itself must still match what it generated — guards
/// against accidental semantic drift in the legacy stepper.
#[cfg(feature = "legacy-oracle")]
#[test]
fn legacy_oracle_matches_golden_traces() {
    for (name, pattern, seed) in CASES {
        let scn = scenario(pattern);
        let mut sim = Simulation::new_legacy(&scn, SimConfig::default(), seed).unwrap();
        assert!(!sim.is_event_core());
        let got = trace(&mut sim, &scn);
        assert_matches_fixture(name, &got, "legacy oracle");
    }
}

/// Rewrites every fixture from the legacy oracle. Ignored by default:
/// run explicitly after an intentional observable-contract change, and
/// review the diff.
#[cfg(feature = "legacy-oracle")]
#[test]
#[ignore = "regenerates fixtures; run explicitly after intentional contract changes"]
fn regenerate_golden_traces() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::create_dir_all(&dir).unwrap();
    for (name, pattern, seed) in CASES {
        let scn = scenario(pattern);
        let mut sim = Simulation::new_legacy(&scn, SimConfig::default(), seed).unwrap();
        let text = trace(&mut sim, &scn);
        std::fs::write(fixture_path(name), text).unwrap();
    }
}
