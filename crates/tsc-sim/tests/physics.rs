//! Targeted physics tests for the queue model: head-of-line blocking on
//! shared lanes, spillback through full links, insertion backlog
//! ordering, and drain behavior. These are the mechanisms the paper's
//! intersection modeling (§VI-A, Fig. 2) depends on.

use tsc_sim::scenario::Scenario;
use tsc_sim::{
    ArrivalModel, Direction, FlowProfile, Lane, LinkId, Movement, NetworkBuilder, NodeId, OdFlow,
    Phase, SignalPlan, SimConfig, Simulation,
};

/// One signalized intersection with a single shared lane on the west
/// approach (through + left), plus terminals. Two flows: one through
/// (west -> east), one left-turning (west -> north).
fn shared_lane_scenario(through_rate: f64, left_rate: f64) -> (Scenario, LinkId) {
    let mut b = NetworkBuilder::new();
    let c = b.add_node(0.0, 0.0, true);
    let n = b.add_node(0.0, 200.0, false);
    let e = b.add_node(200.0, 0.0, false);
    let s = b.add_node(0.0, -200.0, false);
    let w = b.add_node(-200.0, 0.0, false);
    // All approaches single fully-shared lanes.
    let mut west_in = None;
    for (t, d) in [
        (n, Direction::South),
        (e, Direction::West),
        (s, Direction::North),
        (w, Direction::East),
    ] {
        let l = b
            .add_link(t, c, d, vec![Lane::all_movements()])
            .expect("in");
        if t == w {
            west_in = Some(l);
        }
        b.add_link(c, t, d.opposite(), vec![Lane::all_movements()])
            .expect("out");
    }
    let network = b.build().expect("network");
    let west_in = west_in.expect("west link");
    // A custom 2-phase plan: phase 0 permits only Through+Right from
    // the west approach; phase 1 permits only Left.
    let plan = SignalPlan::new(
        c,
        vec![
            Phase::new([(west_in, Movement::Through), (west_in, Movement::Right)]),
            Phase::new([(west_in, Movement::Left)]),
        ],
    )
    .expect("plan");
    let flows = vec![
        OdFlow::new(
            NodeId(4),
            NodeId(2),
            FlowProfile::constant(through_rate, 0.0, 600.0),
        ),
        OdFlow::new(
            NodeId(4),
            NodeId(1),
            FlowProfile::constant(left_rate, 0.0, 600.0),
        ),
    ];
    let scenario = Scenario::new("shared-lane", network, vec![plan], flows).expect("scenario");
    (scenario, west_in)
}

fn sim(scenario: &Scenario) -> Simulation {
    let cfg = SimConfig {
        arrival_model: ArrivalModel::Deterministic,
        ..SimConfig::default()
    };
    Simulation::new(scenario, cfg, 1).expect("sim")
}

/// A left-turning head vehicle on a shared lane must block the through
/// traffic behind it while only the through phase is green — the "Head
/// of Line" blocking of §IV-A.
#[test]
fn left_turner_blocks_shared_lane_through_traffic() {
    // Light through traffic plus occasional left-turners.
    let (scenario, west_in) = shared_lane_scenario(600.0, 120.0);
    let mut s = sim(&scenario);
    // Hold the through-only phase forever: left-turners can never go.
    s.request_phase(NodeId(0), 0).expect("phase");
    for _ in 0..600 {
        s.step().unwrap();
    }
    // The queue grows without bound because each left-turner at the
    // head blocks everything behind it.
    let queue = s.link_queue(west_in);
    assert!(queue > 10, "HoL blocking stalls the shared lane: {queue}");
    // Through vehicles do finish (those that discharge between
    // left-turn arrivals), but far fewer than demand.
    let through_demand = 600.0 * 600.0 / 3600.0;
    assert!(
        (s.metrics().finished() as f64) < 0.8 * through_demand,
        "finished {} of {through_demand} through trips despite permanent green",
        s.metrics().finished()
    );
}

/// With a dedicated left lane instead, through traffic is unaffected.
#[test]
fn dedicated_left_lane_removes_hol_blocking() {
    let mut b = NetworkBuilder::new();
    let c = b.add_node(0.0, 0.0, true);
    let n = b.add_node(0.0, 200.0, false);
    let e = b.add_node(200.0, 0.0, false);
    let s_t = b.add_node(0.0, -200.0, false);
    let w = b.add_node(-200.0, 0.0, false);
    let arterial = || {
        vec![
            Lane::new(&[Movement::Left]),
            Lane::new(&[Movement::Through, Movement::Right]),
        ]
    };
    let mut west_in = None;
    for (t, d) in [
        (n, Direction::South),
        (e, Direction::West),
        (s_t, Direction::North),
        (w, Direction::East),
    ] {
        let l = b.add_link(t, c, d, arterial()).expect("in");
        if t == w {
            west_in = Some(l);
        }
        b.add_link(c, t, d.opposite(), arterial()).expect("out");
    }
    let network = b.build().expect("network");
    let west_in = west_in.expect("west");
    let plan = SignalPlan::new(
        c,
        vec![Phase::new([
            (west_in, Movement::Through),
            (west_in, Movement::Right),
        ])],
    )
    .expect("plan");
    let flows = vec![
        OdFlow::new(
            NodeId(4),
            NodeId(2),
            FlowProfile::constant(600.0, 0.0, 600.0),
        ),
        OdFlow::new(
            NodeId(4),
            NodeId(1),
            FlowProfile::constant(120.0, 0.0, 600.0),
        ),
    ];
    let scenario = Scenario::new("dedicated", network, vec![plan], flows).expect("scenario");
    let mut s = sim(&scenario);
    s.request_phase(NodeId(0), 0).expect("phase");
    for _ in 0..700 {
        s.step().unwrap();
    }
    // Through demand over 600 s = 100 vehicles; nearly all must finish
    // because left-turners wait in their own lane.
    let through_demand = 100.0;
    assert!(
        (s.metrics().finished() as f64) > 0.85 * through_demand,
        "finished {}",
        s.metrics().finished()
    );
}

/// Spillback: when the downstream link fills, green traffic cannot
/// discharge into it.
#[test]
fn full_downstream_link_blocks_discharge() {
    // Corridor: w -> a -> b -> e, with b -> e blocked by a red light
    // at b. The a -> b link (150 m, 1 lane => 20 capacity) must fill,
    // after which a's queue stops draining even though a is green.
    let mut bld = NetworkBuilder::new();
    let w = bld.add_node(-200.0, 0.0, false);
    let a = bld.add_node(0.0, 0.0, true);
    let b_n = bld.add_node(150.0, 0.0, true);
    let e = bld.add_node(350.0, 0.0, false);
    // Side approaches so the four-phase EW phase exists at both nodes.
    let sa = bld.add_node(0.0, -200.0, false);
    let sb = bld.add_node(150.0, -200.0, false);
    let lane = || vec![Lane::all_movements()];
    let wa = bld.add_link(w, a, Direction::East, lane()).expect("wa");
    let ab = bld.add_link(a, b_n, Direction::East, lane()).expect("ab");
    let be = bld.add_link(b_n, e, Direction::East, lane()).expect("be");
    let _ = wa;
    let _ = be;
    bld.add_link(sa, a, Direction::North, lane()).expect("sa");
    bld.add_link(sb, b_n, Direction::North, lane()).expect("sb");
    let network = bld.build().expect("network");
    let plan_a = SignalPlan::four_phase(&network, a).expect("plan a");
    let plan_b = SignalPlan::four_phase(&network, b_n).expect("plan b");
    // Find the EW through phase index for each plan dynamically.
    let ew_phase = |plan: &SignalPlan, link: tsc_sim::LinkId| {
        plan.phases()
            .iter()
            .position(|p| p.permits(link, Movement::Through))
            .expect("EW phase")
    };
    let pa = ew_phase(&plan_a, wa);
    let pb_ns = {
        // A phase at b that does NOT permit ab-through (red for the
        // corridor).
        plan_b
            .phases()
            .iter()
            .position(|p| !p.permits(ab, Movement::Through))
            .expect("red phase")
    };
    let flows = vec![OdFlow::new(w, e, FlowProfile::constant(1800.0, 0.0, 900.0))];
    let scenario =
        Scenario::new("spillback", network, vec![plan_a, plan_b], flows).expect("scenario");
    let mut s = sim(&scenario);
    s.request_phase(a, pa).expect("a green");
    s.request_phase(b_n, pb_ns).expect("b red");
    for _ in 0..900 {
        s.step().unwrap();
    }
    // ab holds at most 150/7.5 = 20 vehicles.
    assert_eq!(s.link_occupancy(ab), 20, "downstream link saturated");
    // And it stays saturated: a cannot push more through its green.
    let before = s.metrics().finished();
    for _ in 0..60 {
        s.step().unwrap();
    }
    assert_eq!(s.metrics().finished(), before, "corridor is fully blocked");
}

/// Detector dropout zeroes readings deterministically; noise perturbs
/// counts but keeps them non-negative and finite.
#[test]
fn sensor_degradation_is_deterministic_and_bounded() {
    let (scenario, _) = shared_lane_scenario(900.0, 200.0);
    let degraded = SimConfig {
        arrival_model: ArrivalModel::Deterministic,
        detector: tsc_sim::DetectorConfig {
            range: 50.0,
            noise: 0.4,
            dropout: 0.3,
        },
        ..SimConfig::default()
    };
    let run = |cfg: SimConfig| {
        let mut s = Simulation::new(&scenario, cfg, 9).expect("sim");
        s.request_phase(NodeId(0), 0).expect("phase");
        for _ in 0..300 {
            s.step().unwrap();
        }
        s.observe_all()
    };
    let a = run(degraded);
    let b = run(degraded);
    assert_eq!(a, b, "degradation is reproducible");
    let clean = run(SimConfig {
        arrival_model: ArrivalModel::Deterministic,
        ..SimConfig::default()
    });
    assert_ne!(a, clean, "degradation changes observations");
    for obs in &a {
        for l in &obs.incoming {
            assert!(l.count >= 0.0 && l.count.is_finite());
            assert!(l.halting >= 0.0);
        }
    }
    // With dropout 0.3, some link readings should be zeroed even under
    // heavy congestion.
    let zeroed = a
        .iter()
        .flat_map(|o| o.incoming.iter())
        .filter(|l| l.count == 0.0)
        .count();
    assert!(zeroed > 0, "dropout visibly zeroes some readings");
}

/// After demand ends, a permissive signal drains every vehicle.
#[test]
fn network_drains_after_demand_ends() {
    let (scenario, _) = shared_lane_scenario(400.0, 0.0);
    let mut s = sim(&scenario);
    s.request_phase(NodeId(0), 0).expect("green");
    for _ in 0..1200 {
        s.step().unwrap();
        if s.metrics().spawned() > 0 && s.active_vehicles() == 0 {
            break;
        }
    }
    assert!(s.metrics().spawned() > 50);
    assert_eq!(
        s.active_vehicles(),
        0,
        "all vehicles exit once demand stops"
    );
    assert_eq!(s.metrics().finished(), s.metrics().spawned());
}
