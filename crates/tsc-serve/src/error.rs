//! Typed serving errors.

use std::fmt;

use pairuplight::TrainError;
use tsc_sim::SimError;

/// Everything that can go wrong while serving a policy.
#[derive(Debug)]
pub enum ServeError {
    /// A checkpoint could not be loaded or failed validation
    /// (truncated file, corrupted checksum trailer, configuration
    /// fingerprint mismatch, layout mismatch). The in-memory policy is
    /// untouched when this is returned.
    Load(TrainError),
    /// The driven environment failed.
    Sim(SimError),
    /// `begin_reload` was called while another reload was already
    /// staged.
    ReloadInFlight,
    /// `commit_reload` was called with no reload staged.
    NoReloadPending,
    /// The joint observation does not match the policy's agent count.
    AgentCountMismatch {
        /// Observations supplied.
        got: usize,
        /// Agents the policy controls.
        expected: usize,
    },
    /// A chaos plan references an agent outside the served grid.
    InvalidChaos {
        /// The out-of-range agent index in the plan.
        agent: usize,
        /// Agents the policy controls.
        agents: usize,
    },
    /// An observation's phase count does not match the served policy's
    /// topology for that agent — the symptom of wiring a tenant to the
    /// wrong grid.
    PhaseCountMismatch {
        /// The offending agent index.
        agent: usize,
        /// Phase count in the observation (pre-clamp).
        got: usize,
        /// Phase count the policy was built for.
        expected: usize,
    },
    /// The fleet was stepped with observations for the wrong number of
    /// tenants.
    TenantCountMismatch {
        /// Tenant observation sets supplied.
        got: usize,
        /// Tenants the fleet hosts.
        expected: usize,
    },
    /// An infra-chaos plan references a tenant outside the fleet.
    InvalidInfraChaos {
        /// The out-of-range tenant index in the plan.
        tenant: usize,
        /// Tenants the fleet hosts.
        tenants: usize,
    },
    /// The fleet was stepped with an offered-load vector for the wrong
    /// number of tenants.
    OfferedLoadMismatch {
        /// Offered-load entries supplied.
        got: usize,
        /// Tenants the fleet hosts.
        expected: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Load(e) => write!(f, "checkpoint load failed: {e}"),
            ServeError::Sim(e) => write!(f, "environment failure: {e}"),
            ServeError::ReloadInFlight => write!(f, "a checkpoint reload is already staged"),
            ServeError::NoReloadPending => write!(f, "no staged checkpoint reload to commit"),
            ServeError::AgentCountMismatch { got, expected } => {
                write!(
                    f,
                    "joint observation has {got} agents, policy controls {expected}"
                )
            }
            ServeError::InvalidChaos { agent, agents } => {
                write!(
                    f,
                    "chaos plan targets agent {agent}, policy controls {agents}"
                )
            }
            ServeError::PhaseCountMismatch {
                agent,
                got,
                expected,
            } => {
                write!(
                    f,
                    "agent {agent} observation reports {got} phases, policy expects {expected}"
                )
            }
            ServeError::TenantCountMismatch { got, expected } => {
                write!(
                    f,
                    "fleet step supplied {got} tenant observation sets, fleet hosts {expected}"
                )
            }
            ServeError::InvalidInfraChaos { tenant, tenants } => {
                write!(
                    f,
                    "infra-chaos plan targets tenant {tenant}, fleet hosts {tenants}"
                )
            }
            ServeError::OfferedLoadMismatch { got, expected } => {
                write!(
                    f,
                    "offered load supplied for {got} tenants, fleet hosts {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<TrainError> for ServeError {
    fn from(e: TrainError) -> Self {
        ServeError::Load(e)
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}
