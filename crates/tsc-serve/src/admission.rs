//! SLA-aware admission control for the serving fleet: deterministic
//! shedding, backpressure, and a brownout ladder.
//!
//! ## Why
//!
//! A fleet that keeps accepting work past its capacity misses *every*
//! tenant's deadline; one that sheds arbitrarily breaks its contracts
//! with the tenants that paid for guarantees. The admission layer sits
//! between the offered load and the per-tenant serving path and makes
//! the trade explicit: every tenant carries an [`SlaClass`] (priority,
//! SLA latency target, a hard cap on how often it may be shed), and
//! every fleet step the [`Admission`] controller assigns each tenant a
//! [`ServiceLevel`] on the brownout ladder:
//!
//! 1. [`Full`](ServiceLevel::Full) — batched policy inference, exactly
//!    as without admission control;
//! 2. [`Degraded`](ServiceLevel::Degraded) — *decimated* inference:
//!    the policy forward runs every other step (phase-offset per
//!    tenant by a hash, so decimated tenants interleave) and the
//!    previous signal plan is held in between — roughly half the
//!    inference cost;
//! 3. [`Standby`](ServiceLevel::Standby) — the warm-standby
//!    MaxPressure controller answers; no network forward at all;
//! 4. [`Shed`](ServiceLevel::Shed) — the request is refused: the
//!    intersection holds its previous phase plan, no controller runs.
//!
//! ## Determinism contract
//!
//! The controller follows the chaos engine's discipline: every
//! decision is a pure function of `(seed, step, offered load, config)`
//! plus two monotone per-tenant counters (steps seen, steps shed).
//! There is no RNG state and no wall-clock input, so:
//!
//! * **no overload ⇒ identity**: while the offered load fits the
//!   configured capacity every tenant is `Full`, bit-identical to a
//!   fleet without admission control (and `capacity: None` disables
//!   the layer outright);
//! * **replay**: the same `(seed, load program, SLA config)` produces
//!   the same level sequence bit-for-bit.
//!
//! Ties between equal-priority tenants are broken by a splitmix64 hash
//! of `(seed, step, tenant)`, so sustained overload rotates the pain
//! across the class instead of starving the highest tenant index.
//!
//! ## The shed-rate guarantee
//!
//! [`SlaClass::max_shed_rate`] is a hard bound, not a target: a tenant
//! is only shed when `(shed so far + 1) / (steps so far + 1)` stays at
//! or under its cap, otherwise it is served at `Standby` even if that
//! overcommits the step's budget. The property test in
//! `tests/admission.rs` drives random load programs against random SLA
//! configs and asserts the running shed ratio never exceeds the cap at
//! any prefix.

use tsc_obs::Json;
use tsc_sim::chaos::{chaos_uniform, fault_salt};
use tsc_sim::Window;

use crate::infra_chaos::{
    tenant_sel_from_json, tenant_sel_to_json, window_from_json, window_to_json, TenantSel,
};

/// Salt decorrelating admission tie-break draws from the infra-chaos
/// and road-chaos streams of the same user seed.
const ADMISSION_SALT: u64 = 0x5eed_ab1e_0f00_d5c4;

/// Salt for the load program's burst-jitter draws.
const LOAD_SALT: u64 = 0x10ad_9e4e_7a70_44c1;

/// Budget cost divisor of [`ServiceLevel::Degraded`] (decimated
/// inference runs the forward every other step).
const DEGRADED_DIV: u64 = 2;

/// Budget cost divisor of [`ServiceLevel::Standby`] (MaxPressure is
/// arithmetic over queue lengths — far cheaper than a forward, not
/// free).
const STANDBY_DIV: u64 = 8;

/// One tenant's service-level agreement with the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaClass {
    /// Admission priority: higher keeps full service longer under
    /// overload. Equal priorities share the pain via hash rotation.
    pub priority: u8,
    /// SLA latency target in microseconds for goodput accounting (a
    /// served step landing over this budget is throughput but not
    /// goodput). `0` means no latency target.
    pub deadline_us: u64,
    /// Hard cap on the long-run fraction of this tenant's steps that
    /// may be shed. `0.0` (the default) means the tenant is never
    /// shed — at worst it is parked at [`ServiceLevel::Standby`].
    pub max_shed_rate: f64,
}

impl Default for SlaClass {
    fn default() -> Self {
        SlaClass {
            priority: 0,
            deadline_us: 0,
            max_shed_rate: 0.0,
        }
    }
}

impl SlaClass {
    /// The class as a JSON object (incident replay context).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("priority", Json::num(f64::from(self.priority))),
            ("deadline_us", Json::num(self.deadline_us as f64)),
            ("max_shed_rate", Json::num(self.max_shed_rate)),
        ])
    }

    /// Parses [`to_json`](Self::to_json) output.
    pub fn from_json(j: &Json) -> Option<SlaClass> {
        Some(SlaClass {
            priority: j.get_num("priority")? as u8,
            deadline_us: j.get_num("deadline_us")? as u64,
            max_shed_rate: j.get_num("max_shed_rate")?,
        })
    }
}

/// Fleet-wide admission knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Aggregate budget per fleet step, in agent-decisions at full
    /// service: a tenant with `A` agents offered `k` requests costs
    /// `k·A` at `Full`, `⌈k·A/2⌉` at `Degraded`, `⌈k·A/8⌉` at
    /// `Standby`, `0` at `Shed`. While the total full-service demand
    /// fits, every tenant is `Full`.
    pub capacity: u64,
}

/// Where a tenant sits on the brownout ladder this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceLevel {
    /// Full batched policy inference — identical to no admission.
    Full,
    /// Decimated inference: the forward runs every other step, the
    /// previous plan is held in between.
    Degraded,
    /// Warm-standby MaxPressure answers; no forward.
    Standby,
    /// Refused: the previous plan is held, no controller runs.
    Shed,
}

impl ServiceLevel {
    /// Number of levels (telemetry array size).
    pub const COUNT: usize = 4;
    /// Every level, in [`index`](Self::index) order (least to most
    /// degraded).
    pub const ALL: [ServiceLevel; ServiceLevel::COUNT] = [
        ServiceLevel::Full,
        ServiceLevel::Degraded,
        ServiceLevel::Standby,
        ServiceLevel::Shed,
    ];

    /// Stable dense index for telemetry arrays.
    pub fn index(self) -> usize {
        match self {
            ServiceLevel::Full => 0,
            ServiceLevel::Degraded => 1,
            ServiceLevel::Standby => 2,
            ServiceLevel::Shed => 3,
        }
    }

    /// Whether this level runs the tenant's policy at all.
    pub fn runs_policy(self) -> bool {
        matches!(self, ServiceLevel::Full | ServiceLevel::Degraded)
    }

    /// Whether this level is below full service (brownout or shed).
    pub fn browned_out(self) -> bool {
        self != ServiceLevel::Full
    }
}

/// The per-step admission controller of one fleet. Holds only the
/// monotone counters backing the shed-rate guarantee; every decision
/// is otherwise a pure function of its inputs.
#[derive(Debug, Clone)]
pub struct Admission {
    cfg: AdmissionConfig,
    classes: Vec<SlaClass>,
    seed: u64,
    /// Admission steps seen per tenant.
    steps: Vec<u64>,
    /// Steps shed per tenant (the numerator of the shed-rate bound).
    shed: Vec<u64>,
    /// Scratch: tenant order of the current step (priority desc, hash
    /// tie-break).
    order: Vec<usize>,
}

impl Admission {
    /// A controller for `classes.len()` tenants under `cfg`, keyed by
    /// `seed` (tie-break rotation).
    pub fn new(cfg: AdmissionConfig, classes: Vec<SlaClass>, seed: u64) -> Self {
        let n = classes.len();
        Admission {
            cfg,
            classes,
            seed,
            steps: vec![0; n],
            shed: vec![0; n],
            order: (0..n).collect(),
        }
    }

    /// The SLA classes, in tenant order.
    pub fn classes(&self) -> &[SlaClass] {
        &self.classes
    }

    /// Steps shed so far for tenant `t`.
    pub fn shed_steps(&self, t: usize) -> u64 {
        self.shed[t]
    }

    /// Admission steps seen so far for tenant `t`.
    pub fn steps(&self, t: usize) -> u64 {
        self.steps[t]
    }

    /// Whether tenant `t`'s shed budget is exhausted: shedding it once
    /// more would violate its max-shed-rate cap (the flight recorder's
    /// shed-cap incident trigger).
    pub fn shed_budget_exhausted(&self, t: usize) -> bool {
        !self.may_shed(t)
    }

    /// Whether shedding tenant `t` once more would still respect its
    /// max-shed-rate cap.
    fn may_shed(&self, t: usize) -> bool {
        let cap = self.classes[t].max_shed_rate;
        cap > 0.0 && (self.shed[t] + 1) as f64 <= cap * (self.steps[t] + 1) as f64
    }

    /// Assigns every tenant a service level for fleet step `step`.
    /// `offered[t]` is tenant `t`'s offered load in requests (clamped
    /// to ≥ 1 — the grid needs an answer every step) and `agents[t]`
    /// its grid size. Deterministic in `(seed, step, offered, config)`
    /// and the controller's counters; updates the counters.
    ///
    /// # Panics
    ///
    /// Panics if `offered` or `agents` do not match the tenant count
    /// (the fleet validates its inputs before calling in).
    pub fn decide(&mut self, step: u64, offered: &[u64], agents: &[usize]) -> Vec<ServiceLevel> {
        let n = self.classes.len();
        assert_eq!(offered.len(), n, "offered load per tenant");
        assert_eq!(agents.len(), n, "agent count per tenant");
        let cost_full = |t: usize| -> u64 { offered[t].max(1).saturating_mul(agents[t] as u64) };
        let demand: u64 = (0..n).map(&cost_full).fold(0, u64::saturating_add);
        let mut levels = vec![ServiceLevel::Full; n];
        if demand > self.cfg.capacity {
            // Most important first; equal priority rotates by hash so
            // sustained overload spreads across the class.
            let (seed, classes) = (self.seed, &self.classes);
            self.order.sort_by_key(|&t| {
                let tie = chaos_uniform(fault_salt(seed ^ ADMISSION_SALT, t), clamp_step(step), t);
                (std::cmp::Reverse(classes[t].priority), FloatOrd(tie))
            });
            let mut remaining = self.cfg.capacity;
            for &t in &self.order {
                let full = cost_full(t);
                let degraded = full.div_ceil(DEGRADED_DIV);
                let standby = full.div_ceil(STANDBY_DIV);
                let level = if full <= remaining {
                    ServiceLevel::Full
                } else if degraded <= remaining {
                    ServiceLevel::Degraded
                } else if standby <= remaining || !self.may_shed(t) {
                    // The shed cap is a hard guarantee: a tenant that
                    // cannot be shed is served at Standby even when
                    // that overcommits the budget.
                    ServiceLevel::Standby
                } else {
                    ServiceLevel::Shed
                };
                remaining = remaining.saturating_sub(match level {
                    ServiceLevel::Full => full,
                    ServiceLevel::Degraded => degraded,
                    ServiceLevel::Standby => standby,
                    ServiceLevel::Shed => 0,
                });
                levels[t] = level;
            }
        }
        for (t, &level) in levels.iter().enumerate() {
            self.steps[t] += 1;
            if level == ServiceLevel::Shed {
                self.shed[t] += 1;
            }
        }
        levels
    }

    /// Whether a `Degraded` tenant's decimated forward runs at `step`
    /// (the off-steps hold the previous plan). Phase-offset per tenant
    /// by a seed hash so decimated tenants interleave instead of all
    /// skipping the same steps.
    pub fn forward_due(&self, step: u64, tenant: usize) -> bool {
        let phase = fault_salt(self.seed ^ ADMISSION_SALT, tenant) & 1;
        (step + phase).is_multiple_of(2)
    }
}

/// Total-order wrapper so a hash draw can key a sort (the draws come
/// from `chaos_uniform`, which never yields NaN).
#[derive(PartialEq, PartialOrd)]
struct FloatOrd(f64);

impl Eq for FloatOrd {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for FloatOrd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("chaos draws are finite")
    }
}

/// One phase of an open-loop load program: inside `window`, targeted
/// tenants are offered `base` extra requests per step plus a hash
/// burst in `0..=jitter`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPhase {
    /// When the phase is active (fleet decision steps).
    pub window: Window,
    /// Which tenants it loads.
    pub tenants: TenantSel,
    /// Offered requests per step while active.
    pub base: u64,
    /// Extra burst requests, drawn uniformly in `0..=jitter` from a
    /// splitmix64 hash of `(seed, phase index, step, tenant)`.
    pub jitter: u64,
}

/// A deterministic open-loop load program: the offered-load side of
/// the determinism contract. Same `(seed, plan)` ⇒ same offered-load
/// sequence, bit for bit; with no phase active a tenant is offered
/// exactly one request (the no-overload baseline).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadPlan {
    phases: Vec<LoadPhase>,
}

impl LoadPlan {
    /// An empty program: every tenant offered 1 request per step.
    pub fn new() -> Self {
        LoadPlan::default()
    }

    /// Adds a phase offering `base` requests/step (+ hash burst up to
    /// `jitter`) to targeted tenants during `window`.
    pub fn phase(mut self, window: Window, tenants: TenantSel, base: u64, jitter: u64) -> Self {
        self.phases.push(LoadPhase {
            window,
            tenants,
            base,
            jitter,
        });
        self
    }

    /// The scheduled phases.
    pub fn phases(&self) -> &[LoadPhase] {
        &self.phases
    }

    /// Offered requests for `tenant` at `step` under `seed`: the sum
    /// of all active phases, or 1 when none is active.
    pub fn offered(&self, seed: u64, step: u64, tenant: usize) -> u64 {
        let s = clamp_step(step);
        let mut total = 0u64;
        let mut active = false;
        for (idx, p) in self.phases.iter().enumerate() {
            if p.window.contains(s) && p.tenants.matches(tenant) {
                active = true;
                let burst = if p.jitter > 0 {
                    let draw = chaos_uniform(fault_salt(seed ^ LOAD_SALT, idx), s, tenant);
                    // draw ∈ [0, 1): scales to 0..=jitter inclusive.
                    (draw * (p.jitter + 1) as f64) as u64
                } else {
                    0
                };
                total = total.saturating_add(p.base).saturating_add(burst);
            }
        }
        if active {
            total
        } else {
            1
        }
    }

    /// The offered load of every tenant at `step`, in tenant order.
    pub fn offered_all(&self, seed: u64, step: u64, tenants: usize) -> Vec<u64> {
        (0..tenants).map(|t| self.offered(seed, step, t)).collect()
    }

    /// The program as a JSON array of phases (incident replay
    /// context). [`from_json`](Self::from_json) round-trips it.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.phases
                .iter()
                .map(|p| {
                    Json::obj([
                        ("window", window_to_json(p.window)),
                        ("tenants", tenant_sel_to_json(p.tenants)),
                        ("base", Json::num(p.base as f64)),
                        ("jitter", Json::num(p.jitter as f64)),
                    ])
                })
                .collect(),
        )
    }

    /// Parses [`to_json`](Self::to_json) output. `None` on shape
    /// mismatch.
    pub fn from_json(j: &Json) -> Option<LoadPlan> {
        let Json::Arr(items) = j else { return None };
        let mut phases = Vec::with_capacity(items.len());
        for item in items {
            phases.push(LoadPhase {
                window: window_from_json(item.get("window")?)?,
                tenants: tenant_sel_from_json(item.get("tenants")?)?,
                base: item.get_num("base")? as u64,
                jitter: item.get_num("jitter")? as u64,
            });
        }
        Some(LoadPlan { phases })
    }
}

/// Fleet steps are `u64`; windows reuse the chaos engine's `u32`
/// [`Window`] (see `infra_chaos::clamp_step` for the rationale).
fn clamp_step(step: u64) -> u32 {
    u32::try_from(step).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes(prio: &[u8]) -> Vec<SlaClass> {
        prio.iter()
            .map(|&priority| SlaClass {
                priority,
                max_shed_rate: 1.0,
                ..Default::default()
            })
            .collect()
    }

    #[test]
    fn under_capacity_everyone_is_full() {
        let mut a = Admission::new(AdmissionConfig { capacity: 100 }, classes(&[0, 1, 2]), 7);
        for step in 0..20 {
            let levels = a.decide(step, &[1, 1, 1], &[4, 9, 4]);
            assert!(levels.iter().all(|l| *l == ServiceLevel::Full));
        }
        assert_eq!(a.shed_steps(0), 0);
    }

    #[test]
    fn overload_degrades_lowest_priority_first() {
        // Demand 3×4 = 12 at 4× load = 48; capacity 30 fits two full
        // (32 > 30, so one full + one degraded + ...).
        let mut a = Admission::new(AdmissionConfig { capacity: 20 }, classes(&[2, 1, 0]), 7);
        let levels = a.decide(0, &[4, 4, 4], &[4, 4, 4]);
        assert_eq!(levels[0], ServiceLevel::Full, "gold keeps full service");
        assert!(levels[2].browned_out(), "bronze browns out first");
        assert!(
            levels[2].index() >= levels[1].index(),
            "bronze no better off than silver: {levels:?}"
        );
    }

    #[test]
    fn zero_shed_rate_is_never_shed_even_at_extreme_overload() {
        let cls = vec![
            SlaClass {
                priority: 0,
                max_shed_rate: 0.0,
                ..Default::default()
            };
            3
        ];
        let mut a = Admission::new(AdmissionConfig { capacity: 1 }, cls, 3);
        for step in 0..200 {
            let levels = a.decide(step, &[1000, 1000, 1000], &[9, 9, 9]);
            assert!(
                levels.iter().all(|l| *l != ServiceLevel::Shed),
                "step {step}: {levels:?}"
            );
        }
    }

    #[test]
    fn shed_ratio_respects_the_cap_at_every_prefix() {
        let cap = 0.25;
        let cls = vec![
            SlaClass {
                priority: 0,
                max_shed_rate: cap,
                ..Default::default()
            };
            2
        ];
        let mut a = Admission::new(AdmissionConfig { capacity: 1 }, cls, 11);
        for step in 0..500 {
            a.decide(step, &[100, 100], &[16, 16]);
            for t in 0..2 {
                let ratio = a.shed_steps(t) as f64 / a.steps(t).max(1) as f64;
                assert!(
                    ratio <= cap + 1e-12,
                    "tenant {t} step {step}: {ratio} > {cap}"
                );
            }
        }
        // The cap is also actually used: sustained extreme overload
        // sheds close to the allowance.
        assert!(a.shed_steps(0) + a.shed_steps(1) > 100);
    }

    #[test]
    fn decisions_replay_bit_for_bit_and_rotate_with_the_seed() {
        let run = |seed: u64| -> Vec<Vec<ServiceLevel>> {
            let mut a = Admission::new(AdmissionConfig { capacity: 10 }, classes(&[1, 1, 1]), seed);
            (0..64)
                .map(|s| a.decide(s, &[3, 3, 3], &[4, 4, 4]))
                .collect()
        };
        assert_eq!(run(5), run(5), "bit-for-bit replay");
        assert_ne!(run(5), run(6), "seed rotates the tie-break");
    }

    #[test]
    fn equal_priority_overload_rotates_rather_than_starves() {
        let mut a = Admission::new(AdmissionConfig { capacity: 6 }, classes(&[1, 1, 1]), 9);
        let mut full_steps = [0u64; 3];
        for step in 0..300 {
            let levels = a.decide(step, &[1, 1, 1], &[4, 4, 4]);
            for (t, l) in levels.iter().enumerate() {
                if *l == ServiceLevel::Full {
                    full_steps[t] += 1;
                }
            }
        }
        // Capacity fits one full tenant per step; the hash tie-break
        // must hand it around, not pin it to one index.
        for (t, &f) in full_steps.iter().enumerate() {
            assert!(f > 30, "tenant {t} starved of full service: {full_steps:?}");
        }
    }

    #[test]
    fn forward_due_decimates_at_half_rate_with_tenant_phase_offsets() {
        let a = Admission::new(AdmissionConfig { capacity: 1 }, classes(&[0, 0, 0, 0]), 4);
        for t in 0..4 {
            let due: Vec<bool> = (0..10).map(|s| a.forward_due(s, t)).collect();
            assert_eq!(due.iter().filter(|&&d| d).count(), 5, "half rate");
            // Strict alternation.
            for w in due.windows(2) {
                assert_ne!(w[0], w[1]);
            }
        }
    }

    #[test]
    fn load_plan_offers_one_outside_phases_and_sums_inside() {
        let plan = LoadPlan::new()
            .phase(Window::new(10, 20), TenantSel::All, 4, 0)
            .phase(Window::new(15, 20), TenantSel::One(1), 2, 0);
        assert_eq!(plan.offered(0, 5, 0), 1, "idle baseline");
        assert_eq!(plan.offered(0, 12, 0), 4);
        assert_eq!(plan.offered(0, 16, 1), 6, "phases sum");
        assert_eq!(plan.offered(0, 25, 1), 1, "window closed");
    }

    #[test]
    fn load_bursts_are_deterministic_bounded_and_seeded() {
        let plan = LoadPlan::new().phase(Window::always(), TenantSel::All, 5, 3);
        let trace = |seed: u64| -> Vec<u64> { (0..64).map(|s| plan.offered(seed, s, 2)).collect() };
        assert_eq!(trace(1), trace(1));
        assert_ne!(trace(1), trace(2));
        assert!(trace(1).iter().all(|&o| (5..=8).contains(&o)));
        // The full jitter range is actually reachable.
        assert!(trace(1).contains(&5));
        assert!(trace(1).contains(&8));
    }

    #[test]
    fn load_plan_and_sla_json_round_trip() {
        let plan = LoadPlan::new()
            .phase(Window::new(10, 20), TenantSel::All, 4, 3)
            .phase(Window::always(), TenantSel::One(2), 9, 0);
        let text = plan.to_json().compact();
        let back = LoadPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, plan);
        assert_eq!(
            LoadPlan::from_json(&LoadPlan::new().to_json()),
            Some(LoadPlan::new())
        );
        let sla = SlaClass {
            priority: 3,
            deadline_us: 1500,
            max_shed_rate: 0.25,
        };
        assert_eq!(SlaClass::from_json(&sla.to_json()), Some(sla));
    }

    #[test]
    fn service_level_indices_are_dense_and_ordered() {
        for (i, l) in ServiceLevel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
        assert!(ServiceLevel::Full.runs_policy());
        assert!(ServiceLevel::Degraded.runs_policy());
        assert!(!ServiceLevel::Standby.runs_policy());
        assert!(!ServiceLevel::Shed.runs_policy());
        assert!(!ServiceLevel::Full.browned_out());
        assert!(ServiceLevel::Shed.browned_out());
    }
}
