//! # tsc-serve — deadline-aware PairUpLight policy serving
//!
//! Loads a `pairuplight-checkpoint v1` bundle and drives a live
//! [`tsc_sim::TscEnv`] grid **without the training stack**: no autograd
//! tape, no optimizer state, near-zero allocation in the hot loop.
//!
//! * **Tape-free inference** — forwards run through the `*_into`
//!   kernels in `tsc-nn` into persistent, pre-sized activation
//!   buffers; [`ServeRuntime::alloc_events`] exposes the allocation
//!   probe that pins "no allocation in steady state".
//! * **Batched multi-agent inference** — under parameter sharing, all
//!   intersections' observations and incoming messages are stacked
//!   into one matrix per step; row independence of every kernel makes
//!   this bit-identical to per-agent forwards (pinned by the tier-1
//!   parity test against the training controller).
//! * **Deadline + graceful degradation** — a configurable per-step
//!   latency budget; on overrun, affected intersections fall back to a
//!   warm-standby MaxPressure controller, with typed [`ServeError`]s
//!   and per-agent fallback accounting.
//! * **Controller-side resilience** — optional observation-health
//!   tracking with last-known-good imputation, a message channel with
//!   a configurable loss policy, per-agent health-triggered fallback
//!   with cause attribution ([`ResilienceConfig`], [`DegradeReason`]),
//!   and [`ServeRuntime::set_chaos`] to inject deterministic comms
//!   faults from a [`tsc_sim::ChaosPlan`].
//! * **Serving telemetry** — decisions/sec, latency p50/p95/p99 from a
//!   streaming log-bucket histogram, fallback rate
//!   ([`ServeTelemetry`]).
//! * **Zero-degradation hot reload** — [`ServeRuntime::begin_reload`]
//!   stages and fully validates a new checkpoint into a second buffer
//!   while the live policy keeps serving at full quality;
//!   [`ServeRuntime::commit_reload`] swaps the buffers atomically
//!   between steps. A staged reload never costs a degraded step
//!   (pinned by a reload-storm test).
//! * **SLA-aware admission** — [`FleetRuntime`] tenants carry an
//!   [`SlaClass`] (priority, deadline, max shed rate); under a
//!   configured capacity ([`AdmissionConfig`]) a deterministic
//!   splitmix64-hash brownout ladder (full → decimated inference →
//!   MaxPressure standby → shed) sheds load without ever violating a
//!   tenant's shed-rate cap, and with no overload is bit-identical to
//!   a fleet without the layer.
//! * **Fleet supervision** — [`FleetRuntime`] hosts many tenants (one
//!   runtime per grid) with per-tenant circuit breakers, crash
//!   isolation (`catch_unwind`; a panicking tenant answers with
//!   MaxPressure, never kills the process), deterministic
//!   hash-jittered backoff, bounded checkpoint-reload recovery, and a
//!   pure-hash [`InfraChaosPlan`] (injected panics, reload corruption,
//!   latency spikes, reload storms) with the chaos engine's guarantee:
//!   empty plan == no plan, bit for bit.
//! * **Flight recorder** — with [`FleetConfig::flight`] set, every
//!   tenant keeps a fixed-capacity ring of compact per-step frames
//!   (observation/message/action digests, serving source, admission
//!   level, supervisor state, chaos scope, deadline slack). Panics,
//!   breaker trips, quarantines, and shed-cap exhaustion dump the ring
//!   plus a deterministic replay context as a self-describing incident
//!   file; `tsc-bench`'s `forensics` tool replays incidents
//!   bit-for-bit. Recording is strictly observation-only: the
//!   recorder-on fleet digests bit-identical to recorder-off (pinned),
//!   and [`FleetRuntime::exposition`] serves Prometheus-format health
//!   live.
//!
//! ## Quickstart
//!
//! ```no_run
//! use pairuplight::PairUpLightConfig;
//! use tsc_serve::{ServeConfig, ServeRuntime};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let env: tsc_sim::TscEnv = unimplemented!();
//! let mut rt = ServeRuntime::from_checkpoint(
//!     &env,
//!     PairUpLightConfig::default(),
//!     ServeConfig::default(),
//!     "model.ckpt",
//! )?;
//! let obs = env.clone().reset(0);
//! let step = rt.serve_step(&obs)?;
//! println!(
//!     "{} actions, p95 {:.1} µs",
//!     step.actions.len(),
//!     rt.telemetry().p95_us()
//! );
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod admission;
mod engine;
mod error;
mod fleet;
mod infra_chaos;
mod supervisor;
mod telemetry;

pub use admission::{Admission, AdmissionConfig, LoadPhase, LoadPlan, ServiceLevel, SlaClass};
pub use engine::{DegradeReason, ResilienceConfig, ServeConfig, ServeRuntime, ServeStep};
pub use error::ServeError;
pub use fleet::{
    actions_digest, obs_digest, FleetClock, FleetConfig, FleetExposition, FleetRuntime, FleetStep,
    FlightConfig, FlightHealth, ServedBy, TenantSpec, TenantStats, TenantStep, MAX_HELD_INCIDENTS,
};
pub use infra_chaos::{InfraChaosPlan, InfraFault, InfraKind, TenantSel};
pub use supervisor::{Supervisor, SupervisorConfig, TenantEvent, TenantState};
pub use telemetry::ServeTelemetry;
