//! The serving runtime: batched tape-free inference with deadlines,
//! graceful degradation, and atomic checkpoint hot reload.
//!
//! ## Exactness of the batched path
//!
//! Under parameter sharing every intersection runs the same actor, so
//! the runtime stacks all `N` agent inputs into one `N × D` matrix and
//! does a single forward per step. Every kernel on that path (matmul,
//! bias add, LSTM gates, softmax) is row-independent, so the batched
//! forward is **bit-identical** to `N` separate `1 × D` forwards — the
//! tier-1 parity test in `tests/parity.rs` pins this against the
//! training stack's [`PairUpLightController`]
//! (pairuplight::PairUpLightController).
//!
//! ## Degradation model
//!
//! A [`MaxPressureController`] runs warm-standby: it is advanced every
//! step (so its min-hold counters stay continuous) and its actions are
//! used whenever the policy cannot answer. The full degradation ladder,
//! from least to most degraded:
//!
//! 1. **healthy** — batched policy inference on the raw observation;
//! 2. **imputed** — the optional observation-health tracker
//!    ([`ObsHealth`](pairuplight::ObsHealth)) papers over implausible
//!    detector readings with last-known-good values, and the
//!    [`MessageLossPolicy`](pairuplight::MessageLossPolicy) substitutes
//!    for dropped partner messages; the policy still decides;
//! 3. **per-agent fallback** — an agent whose sensor-suspect or
//!    message-loss streak crosses its configured threshold (or, on the
//!    per-agent path, whose turn arrives after the deadline) is
//!    answered by MaxPressure while the rest of the grid stays on the
//!    policy;
//! 4. **whole-step fallback** — a batched deadline overrun degrades
//!    every agent for the step.
//!
//! A staged checkpoint reload is deliberately *not* on the ladder: the
//! staged snapshot is a second buffer, validated off the serving path,
//! and the live policy answers at full quality until
//! [`commit_reload`](ServeRuntime::commit_reload) swaps the buffers
//! between steps — a reload never costs a degraded step.
//!
//! Deadline semantics differ by path: the batched forward is
//! all-or-nothing, so an overrun discards the whole step's policy
//! actions (recurrent state still advances, keeping the policy warm);
//! the per-agent path checks the deadline before each agent and only
//! the agents after the overrun fall back, carrying their previous
//! message and LSTM state forward unchanged.
//!
//! Every fallback decision is attributed to a [`DegradeReason`] per
//! agent (in [`ServeStep::causes`] and the telemetry), so an operator
//! can tell a slow model from a dying detector from a cut cable.
//!
//! ## Chaos
//!
//! [`set_chaos`](ServeRuntime::set_chaos) installs the comms faults of
//! a [`ChaosPlan`](tsc_sim::ChaosPlan) into the runtime's
//! [`MessageChannel`](pairuplight::MessageChannel) (sensing and
//! actuation faults live in the simulator). Comms fault windows are in
//! *decision steps* — the unit the channel operates in — while
//! sensing/actuation windows are in sim seconds. With no faults
//! installed the channel is bit-identical to the plain double-buffered
//! message exchange it replaced.

use std::path::Path;
use std::time::{Duration, Instant};

use pairuplight::message::logistic;
use pairuplight::{
    Checkpoint, HealthConfig, MessageChannel, MessageLossPolicy, ObsHealth, PairUpLight,
    PairUpLightConfig, PairingMode, PolicySnapshot, TrainError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsc_baselines::MaxPressureController;
use tsc_nn::{LstmState, Tensor};
use tsc_rl::distribution::Categorical;
use tsc_sim::chaos::AgentSel;
use tsc_sim::{ChaosPlan, Controller, IntersectionObs, TscEnv};

use crate::error::ServeError;
use crate::telemetry::ServeTelemetry;

/// Serving-time knobs (independent of the trained policy's config).
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Per-step latency budget. When a step exceeds it, affected
    /// intersections fall back to MaxPressure instead of blocking the
    /// signal plan. `None` disables the deadline.
    pub deadline: Option<Duration>,
    /// Minimum phase hold (decision steps) for the fallback
    /// controller; clamped to at least 1.
    pub fallback_min_hold: usize,
    /// Resilience against degraded sensing and comms. The default is
    /// fully disabled, leaving serving bit-identical to a runtime
    /// without the resilience layer.
    pub resilience: ResilienceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            deadline: None,
            fallback_min_hold: 2,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Controller-side resilience knobs: observation-health tracking,
/// message-loss substitution, and the health-triggered fallback
/// thresholds.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResilienceConfig {
    /// Observation-health tracking thresholds; `None` (the default)
    /// disables tracking and imputation entirely.
    pub health: Option<HealthConfig>,
    /// What replaces a dropped partner message.
    pub msg_loss: MessageLossPolicy,
    /// Fall an agent back to MaxPressure after this many consecutive
    /// sensor-suspect steps (requires `health`; 0 disables).
    pub sensor_fallback_after: u32,
    /// Fall an agent back to MaxPressure after this many consecutive
    /// dropped partner messages (0 disables).
    pub comms_fallback_after: u32,
}

/// Why a step (or part of it) was served by the fallback controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The per-step latency budget was exceeded.
    DeadlineOverrun,
    /// A checkpoint reload is staged but not yet committed.
    ///
    /// Retained for telemetry/wire compatibility: since the
    /// double-buffered snapshot swap, a staged reload no longer
    /// degrades serving, so the runtime never emits this reason. A
    /// pinned reload-storm test asserts the zero-degradation property.
    ReloadInFlight,
    /// The agent's sensor-suspect streak crossed
    /// [`ResilienceConfig::sensor_fallback_after`].
    SensorHealth,
    /// The agent's dropped-message streak crossed
    /// [`ResilienceConfig::comms_fallback_after`].
    CommsHealth,
}

impl DegradeReason {
    /// Number of distinct reasons (telemetry array size).
    pub const COUNT: usize = 4;
    /// Every reason, in [`index`](Self::index) order.
    pub const ALL: [DegradeReason; DegradeReason::COUNT] = [
        DegradeReason::DeadlineOverrun,
        DegradeReason::ReloadInFlight,
        DegradeReason::SensorHealth,
        DegradeReason::CommsHealth,
    ];

    /// Stable dense index for telemetry arrays.
    pub fn index(self) -> usize {
        match self {
            DegradeReason::DeadlineOverrun => 0,
            DegradeReason::ReloadInFlight => 1,
            DegradeReason::SensorHealth => 2,
            DegradeReason::CommsHealth => 3,
        }
    }
}

/// The outcome of one served decision step.
#[derive(Debug, Clone)]
pub struct ServeStep {
    /// Chosen phase per agent, in agent order.
    pub actions: Vec<usize>,
    /// Which agents were answered by the fallback controller
    /// (`causes[a].is_some()`, kept in both forms for convenience).
    pub fell_back: Vec<bool>,
    /// Why each agent fell back (`None` = served by the policy).
    pub causes: Vec<Option<DegradeReason>>,
    /// Wall-clock time spent in [`ServeRuntime::serve_step`].
    pub latency: Duration,
    /// Set when any agent fell back this step (the first affected
    /// agent's cause).
    pub degraded: Option<DegradeReason>,
}

/// A deployed PairUpLight policy serving a live grid: tape-free
/// batched inference, per-step deadlines with MaxPressure fallback,
/// streaming telemetry, and atomic checkpoint hot reload.
///
/// Execution is always greedy (argmax), matching
/// [`PairUpLightController::set_greedy`]
/// (pairuplight::PairUpLightController::set_greedy).
#[derive(Debug)]
pub struct ServeRuntime {
    policy: PolicySnapshot,
    cfg: ServeConfig,
    fallback: MaxPressureController,
    /// Recurrent state: one `N × H` entry when parameters are shared
    /// (batched path), else one `1 × H` entry per agent.
    states: Vec<LstmState>,
    /// The partner-message channel (fault-free unless
    /// [`set_chaos`](Self::set_chaos) installed comms faults).
    channel: MessageChannel,
    /// Outgoing messages assembled this step, published to the channel
    /// at the end of the step (`N × bandwidth` scratch).
    next_messages: Vec<Vec<f32>>,
    /// Post-channel partner message per receiver (`N × bandwidth`).
    delivered: Vec<Vec<f32>>,
    /// Partner chosen per receiver on the last served step (flight
    /// recorder / forensics causal pass).
    last_partners: Vec<usize>,
    /// FNV-1a digest of `delivered` as of the last served step.
    last_msg_digest: u64,
    /// Consecutive dropped partner messages per agent.
    comms_streaks: Vec<u32>,
    /// Observation-health tracker (when resilience enables it).
    health: Option<ObsHealth>,
    /// Scratch for the health-filtered joint observation.
    scratch_obs: Vec<IntersectionObs>,
    /// Decision steps served since the last state reset (the clock
    /// comms fault windows are evaluated against).
    step_index: u32,
    /// Assembled network input (persistent across steps).
    x: Tensor,
    bufs: pairuplight::ActorBuffers,
    probs: Tensor,
    masked: Vec<f32>,
    staged: Option<PolicySnapshot>,
    telemetry: ServeTelemetry,
    injected_delay: Option<Duration>,
    rng: StdRng,
    extra_allocs: u64,
    /// Optional JSONL sink for per-step serve events (out-of-band;
    /// dropped with a warning on the first write failure).
    obs_sink: Option<tsc_obs::EventSink>,
}

impl ServeRuntime {
    /// Wraps a policy snapshot for serving.
    pub fn new(policy: PolicySnapshot, cfg: ServeConfig) -> Self {
        let num_agents = policy.num_agents();
        let bandwidth = policy.config().bandwidth;
        let seed = policy.config().seed ^ 0xC0FFEE;
        let mut rt = ServeRuntime {
            fallback: MaxPressureController::new(cfg.fallback_min_hold.max(1)),
            channel: MessageChannel::new(num_agents, bandwidth, cfg.resilience.msg_loss),
            health: cfg.resilience.health.map(|h| ObsHealth::new(num_agents, h)),
            policy,
            cfg,
            states: Vec::new(),
            next_messages: Vec::new(),
            delivered: Vec::new(),
            last_partners: Vec::new(),
            last_msg_digest: 0,
            comms_streaks: vec![0; num_agents],
            scratch_obs: Vec::new(),
            step_index: 0,
            x: Tensor::zeros(0, 0),
            bufs: pairuplight::ActorBuffers::default(),
            probs: Tensor::zeros(0, 0),
            masked: Vec::new(),
            staged: None,
            telemetry: ServeTelemetry::new(num_agents),
            injected_delay: None,
            rng: StdRng::seed_from_u64(seed),
            extra_allocs: 0,
            obs_sink: None,
        };
        rt.reset_state();
        rt
    }

    /// Loads a `pairuplight-checkpoint v1` bundle and builds a serving
    /// runtime for `env` from it — the training stack stays out of the
    /// hot loop; it is only used here to validate and restore the
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Load`] for truncated/corrupt files,
    /// fingerprint mismatches, and layout mismatches; the error is
    /// typed, nothing is partially loaded.
    pub fn from_checkpoint(
        env: &TscEnv,
        cfg: PairUpLightConfig,
        serve_cfg: ServeConfig,
        path: impl AsRef<Path>,
    ) -> Result<Self, ServeError> {
        let (model, _base_seed) = PairUpLight::resume(env, cfg, path)?;
        Ok(ServeRuntime::new(model.policy_snapshot(), serve_cfg))
    }

    /// Zeroes recurrent state and messages, resets the fallback
    /// controller, health tracking, and the message channel (installed
    /// chaos faults persist), and reseeds the runtime RNG
    /// (reproducible episodes).
    fn reset_state(&mut self) {
        let n = self.policy.num_agents();
        let h = self.policy.config().lstm_hidden;
        let bw = self.policy.config().bandwidth;
        self.states = if self.policy.shared() {
            vec![LstmState::zeros(n, h)]
        } else {
            (0..n).map(|_| LstmState::zeros(1, h)).collect()
        };
        self.next_messages = vec![vec![0.0; bw]; n];
        self.delivered = vec![vec![0.0; bw]; n];
        self.channel.reset();
        self.comms_streaks.iter_mut().for_each(|s| *s = 0);
        if let Some(health) = &mut self.health {
            health.reset();
        }
        self.step_index = 0;
        self.fallback.reset();
        self.rng = StdRng::seed_from_u64(self.policy.config().seed ^ 0xC0FFEE);
    }

    /// The serving-time configuration.
    pub fn serve_config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The currently live policy.
    pub fn policy(&self) -> &PolicySnapshot {
        &self.policy
    }

    /// Accumulated serving metrics.
    pub fn telemetry(&self) -> &ServeTelemetry {
        &self.telemetry
    }

    /// Attaches a JSONL sink for per-step serve events. Out-of-band:
    /// serving behavior is unchanged; the sink is dropped (with a
    /// warning on stderr) on the first write failure rather than ever
    /// failing a step.
    pub fn attach_obs(&mut self, sink: tsc_obs::EventSink) {
        self.obs_sink = Some(sink);
    }

    /// Detaches the per-step event sink, returning it (e.g. to flush
    /// or to summarize the file). `None` when none was attached.
    pub fn detach_obs(&mut self) -> Option<tsc_obs::EventSink> {
        self.obs_sink.take()
    }

    /// Total tensor (re)allocation events in the inference hot path so
    /// far. Constant across steps in steady state — the allocation
    /// probe test pins this.
    pub fn alloc_events(&self) -> u64 {
        self.bufs.alloc_events() + self.extra_allocs
    }

    /// Test/chaos hook: sleep this long inside the policy path of every
    /// step (per agent on the per-agent path), making deadline overruns
    /// deterministic. `None` clears the injection.
    pub fn inject_delay(&mut self, delay: Option<Duration>) {
        self.injected_delay = delay;
    }

    /// Whether a reload is staged but not yet committed.
    pub fn reload_in_flight(&self) -> bool {
        self.staged.is_some()
    }

    /// Installs the comms faults of `plan` into the runtime's message
    /// channel, keyed by `seed` (the sensing/actuation faults of the
    /// same plan belong in the simulator — see
    /// [`TscEnv::set_chaos`](tsc_sim::TscEnv::set_chaos)). Replaces any
    /// previously installed faults and clears message history; an empty
    /// plan restores fault-free serving.
    ///
    /// Fault windows are evaluated against the runtime's decision-step
    /// counter, which resets with episode state.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidChaos`] when a comms fault targets an agent
    /// index outside the served grid.
    pub fn set_chaos(&mut self, plan: &ChaosPlan, seed: u64) -> Result<(), ServeError> {
        let n = self.policy.num_agents();
        for fault in plan.comms() {
            if let AgentSel::One(agent) = fault.receivers {
                if agent >= n {
                    return Err(ServeError::InvalidChaos { agent, agents: n });
                }
            }
        }
        // Decorrelate from the simulator's chaos stream for the same
        // user seed.
        self.channel
            .set_faults(plan.comms().to_vec(), seed ^ 0xC077_5EED);
        self.comms_streaks.iter_mut().for_each(|s| *s = 0);
        Ok(())
    }

    /// Stage a checkpoint for hot reload: read, checksum-verify, and
    /// layout-check `path`, holding the new weights aside in a second
    /// buffer. Serving continues **at full quality on the live
    /// policy** until [`commit_reload`](Self::commit_reload); the live
    /// policy is not touched, and on error nothing is staged.
    ///
    /// # Errors
    ///
    /// [`ServeError::ReloadInFlight`] when a reload is already staged;
    /// [`ServeError::Load`] when the checkpoint is truncated, corrupt,
    /// or does not match the live policy's configuration/layout.
    pub fn begin_reload(&mut self, path: impl AsRef<Path>) -> Result<(), ServeError> {
        if self.staged.is_some() {
            return Err(ServeError::ReloadInFlight);
        }
        let ck = Checkpoint::read(path).map_err(TrainError::from)?;
        let next = self.policy.with_checkpoint(&ck)?;
        self.staged = Some(next);
        Ok(())
    }

    /// Swap the staged weights in atomically (between steps) and reset
    /// recurrent state, messages, and the fallback controller — the new
    /// policy starts from a clean episode state.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoReloadPending`] when nothing is staged.
    pub fn commit_reload(&mut self) -> Result<(), ServeError> {
        let next = self.staged.take().ok_or(ServeError::NoReloadPending)?;
        self.policy = next;
        self.reset_state();
        Ok(())
    }

    /// Drop a staged reload, if any. Returns whether one was dropped.
    pub fn abort_reload(&mut self) -> bool {
        self.staged.take().is_some()
    }

    /// Serve one decision step: one phase choice per intersection.
    ///
    /// # Errors
    ///
    /// [`ServeError::AgentCountMismatch`] when `obs` does not match the
    /// policy's agent count; [`ServeError::PhaseCountMismatch`] when an
    /// observation's phase count does not match the policy's topology
    /// for that agent (the signature of wiring a runtime to the wrong
    /// grid). Both are checked before any state is touched — a failed
    /// step leaves the runtime exactly as it was.
    pub fn serve_step(&mut self, obs: &[IntersectionObs]) -> Result<ServeStep, ServeError> {
        let _span = tsc_obs::span!("serve.step");
        let n = self.policy.num_agents();
        if obs.len() != n {
            return Err(ServeError::AgentCountMismatch {
                got: obs.len(),
                expected: n,
            });
        }
        let max_phases = self.policy.config().max_phases;
        for (a, (ob, &expected)) in obs.iter().zip(self.policy.phases_per_agent()).enumerate() {
            // The policy's per-agent phase counts are the scenario's
            // clamped to `max_phases`, so clamp the observation the
            // same way before comparing.
            if ob.num_phases.min(max_phases) != expected {
                return Err(ServeError::PhaseCountMismatch {
                    agent: a,
                    got: ob.num_phases,
                    expected,
                });
            }
        }
        let t0 = Instant::now();
        // Health filtering (identity when disabled): both the fallback
        // and the policy see the sanitized view, so imputation helps
        // whichever controller ends up answering.
        let mut scratch = std::mem::take(&mut self.scratch_obs);
        let eff: &[IntersectionObs] = match self.health.as_mut() {
            Some(health) => {
                scratch.clear();
                scratch.extend_from_slice(obs);
                health.filter(&mut scratch);
                &scratch
            }
            None => obs,
        };
        // Warm standby: the fallback decides every step even when
        // unused, so its min-hold counters track the live grid and a
        // degraded step starts from a sane phase, not a cold reset.
        let fb_actions = self.fallback.decide(eff);
        // A staged reload is invisible here: the staged snapshot is a
        // second buffer held aside, and the live policy keeps serving
        // at full quality until `commit_reload` swaps the buffers
        // between steps.
        let (actions, causes) = {
            let partners = self.partners(eff);
            self.deliver_messages(&partners);
            let causes = self.health_causes();
            if self.policy.shared() {
                self.step_batched(eff, fb_actions, causes, t0)
            } else {
                self.step_per_agent(eff, fb_actions, causes, t0)
            }
        };
        self.scratch_obs = scratch;
        self.step_index += 1;
        let fell_back: Vec<bool> = causes.iter().map(|c| c.is_some()).collect();
        let degraded = causes.iter().find_map(|&c| c);
        let latency = t0.elapsed();
        self.telemetry.record(latency, &causes, degraded.is_some());
        if let Some(sink) = self.obs_sink.as_mut() {
            use tsc_obs::Json;
            let record = Json::obj([
                ("type", Json::str("serve_step")),
                ("step", Json::num(f64::from(self.step_index - 1))),
                ("latency_us", Json::num(latency.as_nanos() as f64 / 1_000.0)),
                (
                    "fallbacks",
                    Json::num(causes.iter().filter(|c| c.is_some()).count() as f64),
                ),
                (
                    "degraded",
                    match degraded {
                        Some(reason) => Json::str(format!("{reason:?}")),
                        None => Json::Null,
                    },
                ),
            ]);
            if let Err(e) = sink.emit(&record) {
                eprintln!(
                    "tsc-obs: serve event logging disabled after write failure on {}: {e}",
                    sink.path().display()
                );
                self.obs_sink = None;
            }
        }
        Ok(ServeStep {
            actions,
            fell_back,
            causes,
            latency,
            degraded,
        })
    }

    /// Runs the message channel for every receiver and updates the
    /// dropped-message streaks. Also books what the flight recorder
    /// reads: the partner map and a bit-exact digest of the delivered
    /// message plane (observation-only — no decision depends on them).
    fn deliver_messages(&mut self, partners: &[usize]) {
        let time = self.step_index;
        for (a, &p) in partners.iter().enumerate() {
            let dropped = self
                .channel
                .deliver_into(a, p, time, &mut self.delivered[a]);
            self.comms_streaks[a] = if dropped {
                self.comms_streaks[a] + 1
            } else {
                0
            };
        }
        self.last_partners.clear();
        self.last_partners.extend_from_slice(partners);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for row in &self.delivered {
            for &v in row {
                let bits = u64::from(v.to_bits());
                for i in 0..4 {
                    h ^= (bits >> (i * 8)) & 0xff;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        self.last_msg_digest = h;
    }

    /// FNV-1a digest of the partner-message plane the policy consumed
    /// on the most recent served step (bit-exact over the `f32`s).
    pub fn last_message_digest(&self) -> u64 {
        self.last_msg_digest
    }

    /// The partner each receiver consumed on the most recent served
    /// step (empty before the first step). `partners[a] = p` means
    /// agent `a` read the message agent `p` published the previous
    /// step — the edge the forensics causal pass walks.
    pub fn last_partners(&self) -> &[usize] {
        &self.last_partners
    }

    /// Per-agent fallback causes from the health trackers (sensor
    /// outranks comms when both trip).
    fn health_causes(&self) -> Vec<Option<DegradeReason>> {
        let n = self.policy.num_agents();
        let mut causes = vec![None; n];
        let res = &self.cfg.resilience;
        if res.sensor_fallback_after > 0 {
            if let Some(health) = &self.health {
                for (cause, &streak) in causes.iter_mut().zip(health.suspect_streaks()) {
                    if streak >= res.sensor_fallback_after {
                        *cause = Some(DegradeReason::SensorHealth);
                    }
                }
            }
        }
        if res.comms_fallback_after > 0 {
            for (cause, &streak) in causes.iter_mut().zip(&self.comms_streaks) {
                if cause.is_none() && streak >= res.comms_fallback_after {
                    *cause = Some(DegradeReason::CommsHealth);
                }
            }
        }
        causes
    }

    fn partners(&mut self, obs: &[IntersectionObs]) -> Vec<usize> {
        match self.policy.config().pairing {
            PairingMode::CongestedUpstream => self.policy.pairing().partners(obs),
            PairingMode::SelfLoop => self.policy.pairing().self_partners(),
            PairingMode::RandomUpstream => self.policy.pairing().random_partners(&mut self.rng),
        }
    }

    /// Greedy action for row `r` of `self.probs`, replicating the
    /// training controller's mask + renormalize + argmax exactly.
    fn greedy_action(&mut self, r: usize, num_phases: usize) -> usize {
        self.masked.clear();
        self.masked
            .extend_from_slice(&self.probs.row(r)[..num_phases]);
        let sum: f32 = self.masked.iter().sum();
        for p in &mut self.masked {
            *p /= sum.max(1e-8);
        }
        Categorical::new(&self.masked).argmax()
    }

    /// Shared-parameter path: all agents in one `N × D` forward.
    ///
    /// Health-degraded agents still go through the forward (one batch
    /// is all-or-nothing, and it keeps their recurrent state and
    /// outgoing message warm); only their *action* is replaced by the
    /// fallback's.
    fn step_batched(
        &mut self,
        obs: &[IntersectionObs],
        fb_actions: Vec<usize>,
        mut causes: Vec<Option<DegradeReason>>,
        t0: Instant,
    ) -> (Vec<usize>, Vec<Option<DegradeReason>>) {
        let _span = tsc_obs::span!("serve.infer");
        let n = self.policy.num_agents();
        let cfg = *self.policy.config();
        let local_dim = self.policy.encoder().local_dim();
        self.extra_allocs += self.x.ensure_shape(n, local_dim + cfg.bandwidth) as u64;
        for (a, ob) in obs.iter().enumerate().take(n) {
            let (local, msg) = self.x.row_mut(a).split_at_mut(local_dim);
            self.policy.encoder().encode_local_into(ob, local);
            msg.copy_from_slice(&self.delivered[a]);
        }
        if let Some(delay) = self.injected_delay {
            std::thread::sleep(delay);
        }
        let (params, actor) = &self.policy.actors()[0];
        let state = &self.states[0];
        actor.infer(params, &self.x, &state.h, &state.c, &mut self.bufs);
        self.extra_allocs += self.probs.ensure_shape(n, cfg.max_phases) as u64;
        tsc_nn::softmax_rows_into(&self.bufs.logits, &mut self.probs);
        let mut actions: Vec<usize> = (0..n)
            .map(|a| self.greedy_action(a, self.policy.phases_per_agent()[a]))
            .collect();
        if cfg.bandwidth > 0 {
            for a in 0..n {
                for (dst, &raw) in self.next_messages[a]
                    .iter_mut()
                    .zip(self.bufs.message.row(a))
                {
                    *dst = logistic(raw);
                }
            }
        }
        // Commit recurrent state and messages even on overrun: the
        // forward already ran, and keeping the policy's state warm
        // means recovery after a slow step needs no re-warmup.
        let state = &mut self.states[0];
        state.h.copy_from(&self.bufs.h);
        state.c.copy_from(&self.bufs.c);
        self.channel.publish(&self.next_messages);
        let overrun = matches!(self.cfg.deadline, Some(d) if t0.elapsed() > d);
        for (a, cause) in causes.iter_mut().enumerate() {
            // The batch is all-or-nothing: an overrun degrades every
            // agent. A pre-existing health cause is the more specific
            // diagnosis, so it is kept.
            if overrun && cause.is_none() {
                *cause = Some(DegradeReason::DeadlineOverrun);
            }
            if cause.is_some() {
                actions[a] = fb_actions[a];
            }
        }
        (actions, causes)
    }

    /// Independent-parameter path: one `1 × D` forward per agent, with
    /// the deadline checked before each agent.
    ///
    /// Unlike the batched path, a health-degraded agent's forward is
    /// skipped entirely (its latency budget is better spent on healthy
    /// agents); it re-publishes its previous message and carries its
    /// LSTM state forward unchanged, exactly like an agent behind a
    /// deadline overrun.
    fn step_per_agent(
        &mut self,
        obs: &[IntersectionObs],
        fb_actions: Vec<usize>,
        mut causes: Vec<Option<DegradeReason>>,
        t0: Instant,
    ) -> (Vec<usize>, Vec<Option<DegradeReason>>) {
        let _span = tsc_obs::span!("serve.infer");
        let n = self.policy.num_agents();
        let cfg = *self.policy.config();
        let local_dim = self.policy.encoder().local_dim();
        let mut actions = fb_actions;
        for a in 0..n {
            if causes[a].is_some() {
                // Health-triggered fallback: keep the fallback action,
                // re-publish the previous message, leave LSTM state.
                let (dst, src) = (&mut self.next_messages[a], self.channel.latest(a));
                dst.copy_from_slice(src);
                continue;
            }
            if let Some(deadline) = self.cfg.deadline {
                if t0.elapsed() > deadline {
                    // Budget exhausted: the rest of the grid keeps its
                    // fallback actions and carries message + LSTM
                    // state forward unchanged.
                    for (b, cause) in causes.iter_mut().enumerate().skip(a) {
                        if cause.is_none() {
                            *cause = Some(DegradeReason::DeadlineOverrun);
                        }
                        let (dst, src) = (&mut self.next_messages[b], self.channel.latest(b));
                        dst.copy_from_slice(src);
                    }
                    break;
                }
            }
            if let Some(delay) = self.injected_delay {
                std::thread::sleep(delay);
            }
            self.extra_allocs += self.x.ensure_shape(1, local_dim + cfg.bandwidth) as u64;
            let (local, msg) = self.x.row_mut(0).split_at_mut(local_dim);
            self.policy.encoder().encode_local_into(&obs[a], local);
            msg.copy_from_slice(&self.delivered[a]);
            let (params, actor) = &self.policy.actors()[a];
            let state = &self.states[a];
            actor.infer(params, &self.x, &state.h, &state.c, &mut self.bufs);
            self.extra_allocs += self.probs.ensure_shape(1, cfg.max_phases) as u64;
            tsc_nn::softmax_rows_into(&self.bufs.logits, &mut self.probs);
            actions[a] = self.greedy_action(0, self.policy.phases_per_agent()[a]);
            if cfg.bandwidth > 0 {
                for (dst, &raw) in self.next_messages[a]
                    .iter_mut()
                    .zip(self.bufs.message.row(0))
                {
                    *dst = logistic(raw);
                }
            }
            let state = &mut self.states[a];
            state.h.copy_from(&self.bufs.h);
            state.c.copy_from(&self.bufs.c);
        }
        self.channel.publish(&self.next_messages);
        (actions, causes)
    }
}

impl Controller for ServeRuntime {
    fn reset(&mut self) {
        self.reset_state();
    }

    fn decide(&mut self, obs: &[IntersectionObs]) -> Vec<usize> {
        self.serve_step(obs)
            .expect("environment topology matches the served policy")
            .actions
    }
}
