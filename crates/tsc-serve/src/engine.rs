//! The serving runtime: batched tape-free inference with deadlines,
//! graceful degradation, and atomic checkpoint hot reload.
//!
//! ## Exactness of the batched path
//!
//! Under parameter sharing every intersection runs the same actor, so
//! the runtime stacks all `N` agent inputs into one `N × D` matrix and
//! does a single forward per step. Every kernel on that path (matmul,
//! bias add, LSTM gates, softmax) is row-independent, so the batched
//! forward is **bit-identical** to `N` separate `1 × D` forwards — the
//! tier-1 parity test in `tests/parity.rs` pins this against the
//! training stack's [`PairUpLightController`]
//! (pairuplight::PairUpLightController).
//!
//! ## Degradation model
//!
//! A [`MaxPressureController`] runs warm-standby: it is advanced every
//! step (so its min-hold counters stay continuous) and its actions are
//! used whenever the policy cannot answer — the per-step deadline was
//! overrun, or a checkpoint reload is staged but not yet committed.
//! Deadline semantics differ by path: the batched forward is
//! all-or-nothing, so an overrun discards the whole step's policy
//! actions (recurrent state still advances, keeping the policy warm);
//! the per-agent path checks the deadline before each agent and only
//! the agents after the overrun fall back, carrying their previous
//! message and LSTM state forward unchanged.

use std::path::Path;
use std::time::{Duration, Instant};

use pairuplight::message::logistic;
use pairuplight::{
    Checkpoint, PairUpLight, PairUpLightConfig, PairingMode, PolicySnapshot, TrainError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsc_baselines::MaxPressureController;
use tsc_nn::{LstmState, Tensor};
use tsc_rl::distribution::Categorical;
use tsc_sim::{Controller, IntersectionObs, TscEnv};

use crate::error::ServeError;
use crate::telemetry::ServeTelemetry;

/// Serving-time knobs (independent of the trained policy's config).
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Per-step latency budget. When a step exceeds it, affected
    /// intersections fall back to MaxPressure instead of blocking the
    /// signal plan. `None` disables the deadline.
    pub deadline: Option<Duration>,
    /// Minimum phase hold (decision steps) for the fallback
    /// controller; clamped to at least 1.
    pub fallback_min_hold: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            deadline: None,
            fallback_min_hold: 2,
        }
    }
}

/// Why a step (or part of it) was served by the fallback controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The per-step latency budget was exceeded.
    DeadlineOverrun,
    /// A checkpoint reload is staged but not yet committed.
    ReloadInFlight,
}

/// The outcome of one served decision step.
#[derive(Debug, Clone)]
pub struct ServeStep {
    /// Chosen phase per agent, in agent order.
    pub actions: Vec<usize>,
    /// Which agents were answered by the fallback controller.
    pub fell_back: Vec<bool>,
    /// Wall-clock time spent in [`ServeRuntime::serve_step`].
    pub latency: Duration,
    /// Set when any agent fell back this step.
    pub degraded: Option<DegradeReason>,
}

/// A deployed PairUpLight policy serving a live grid: tape-free
/// batched inference, per-step deadlines with MaxPressure fallback,
/// streaming telemetry, and atomic checkpoint hot reload.
///
/// Execution is always greedy (argmax), matching
/// [`PairUpLightController::set_greedy`]
/// (pairuplight::PairUpLightController::set_greedy).
#[derive(Debug)]
pub struct ServeRuntime {
    policy: PolicySnapshot,
    cfg: ServeConfig,
    fallback: MaxPressureController,
    /// Recurrent state: one `N × H` entry when parameters are shared
    /// (batched path), else one `1 × H` entry per agent.
    states: Vec<LstmState>,
    /// Double-buffered PairUpLight message channel (`N × bandwidth`).
    messages: Vec<Vec<f32>>,
    next_messages: Vec<Vec<f32>>,
    /// Assembled network input (persistent across steps).
    x: Tensor,
    bufs: pairuplight::ActorBuffers,
    probs: Tensor,
    masked: Vec<f32>,
    staged: Option<PolicySnapshot>,
    telemetry: ServeTelemetry,
    injected_delay: Option<Duration>,
    rng: StdRng,
    extra_allocs: u64,
}

impl ServeRuntime {
    /// Wraps a policy snapshot for serving.
    pub fn new(policy: PolicySnapshot, cfg: ServeConfig) -> Self {
        let num_agents = policy.num_agents();
        let seed = policy.config().seed ^ 0xC0FFEE;
        let mut rt = ServeRuntime {
            fallback: MaxPressureController::new(cfg.fallback_min_hold.max(1)),
            policy,
            cfg,
            states: Vec::new(),
            messages: Vec::new(),
            next_messages: Vec::new(),
            x: Tensor::zeros(0, 0),
            bufs: pairuplight::ActorBuffers::default(),
            probs: Tensor::zeros(0, 0),
            masked: Vec::new(),
            staged: None,
            telemetry: ServeTelemetry::new(num_agents),
            injected_delay: None,
            rng: StdRng::seed_from_u64(seed),
            extra_allocs: 0,
        };
        rt.reset_state();
        rt
    }

    /// Loads a `pairuplight-checkpoint v1` bundle and builds a serving
    /// runtime for `env` from it — the training stack stays out of the
    /// hot loop; it is only used here to validate and restore the
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Load`] for truncated/corrupt files,
    /// fingerprint mismatches, and layout mismatches; the error is
    /// typed, nothing is partially loaded.
    pub fn from_checkpoint(
        env: &TscEnv,
        cfg: PairUpLightConfig,
        serve_cfg: ServeConfig,
        path: impl AsRef<Path>,
    ) -> Result<Self, ServeError> {
        let (model, _base_seed) = PairUpLight::resume(env, cfg, path)?;
        Ok(ServeRuntime::new(model.policy_snapshot(), serve_cfg))
    }

    /// Zeroes recurrent state and messages, resets the fallback
    /// controller, and reseeds the runtime RNG (reproducible episodes).
    fn reset_state(&mut self) {
        let n = self.policy.num_agents();
        let h = self.policy.config().lstm_hidden;
        let bw = self.policy.config().bandwidth;
        self.states = if self.policy.shared() {
            vec![LstmState::zeros(n, h)]
        } else {
            (0..n).map(|_| LstmState::zeros(1, h)).collect()
        };
        self.messages = vec![vec![0.0; bw]; n];
        self.next_messages = vec![vec![0.0; bw]; n];
        self.fallback.reset();
        self.rng = StdRng::seed_from_u64(self.policy.config().seed ^ 0xC0FFEE);
    }

    /// The serving-time configuration.
    pub fn serve_config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The currently live policy.
    pub fn policy(&self) -> &PolicySnapshot {
        &self.policy
    }

    /// Accumulated serving metrics.
    pub fn telemetry(&self) -> &ServeTelemetry {
        &self.telemetry
    }

    /// Total tensor (re)allocation events in the inference hot path so
    /// far. Constant across steps in steady state — the allocation
    /// probe test pins this.
    pub fn alloc_events(&self) -> u64 {
        self.bufs.alloc_events() + self.extra_allocs
    }

    /// Test/chaos hook: sleep this long inside the policy path of every
    /// step (per agent on the per-agent path), making deadline overruns
    /// deterministic. `None` clears the injection.
    pub fn inject_delay(&mut self, delay: Option<Duration>) {
        self.injected_delay = delay;
    }

    /// Whether a reload is staged but not yet committed.
    pub fn reload_in_flight(&self) -> bool {
        self.staged.is_some()
    }

    /// Stage a checkpoint for hot reload: read, checksum-verify, and
    /// layout-check `path`, holding the new weights aside. Serving
    /// continues (on the fallback controller) until
    /// [`commit_reload`](Self::commit_reload); the live policy is not
    /// touched, and on error nothing is staged.
    ///
    /// # Errors
    ///
    /// [`ServeError::ReloadInFlight`] when a reload is already staged;
    /// [`ServeError::Load`] when the checkpoint is truncated, corrupt,
    /// or does not match the live policy's configuration/layout.
    pub fn begin_reload(&mut self, path: impl AsRef<Path>) -> Result<(), ServeError> {
        if self.staged.is_some() {
            return Err(ServeError::ReloadInFlight);
        }
        let ck = Checkpoint::read(path).map_err(TrainError::from)?;
        let next = self.policy.with_checkpoint(&ck)?;
        self.staged = Some(next);
        Ok(())
    }

    /// Swap the staged weights in atomically (between steps) and reset
    /// recurrent state, messages, and the fallback controller — the new
    /// policy starts from a clean episode state.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoReloadPending`] when nothing is staged.
    pub fn commit_reload(&mut self) -> Result<(), ServeError> {
        let next = self.staged.take().ok_or(ServeError::NoReloadPending)?;
        self.policy = next;
        self.reset_state();
        Ok(())
    }

    /// Drop a staged reload, if any. Returns whether one was dropped.
    pub fn abort_reload(&mut self) -> bool {
        self.staged.take().is_some()
    }

    /// Serve one decision step: one phase choice per intersection.
    ///
    /// # Errors
    ///
    /// [`ServeError::AgentCountMismatch`] when `obs` does not match the
    /// policy's agent count.
    pub fn serve_step(&mut self, obs: &[IntersectionObs]) -> Result<ServeStep, ServeError> {
        let n = self.policy.num_agents();
        if obs.len() != n {
            return Err(ServeError::AgentCountMismatch {
                got: obs.len(),
                expected: n,
            });
        }
        let t0 = Instant::now();
        // Warm standby: the fallback decides every step even when
        // unused, so its min-hold counters track the live grid and a
        // degraded step starts from a sane phase, not a cold reset.
        let fb_actions = self.fallback.decide(obs);
        let (actions, fell_back, degraded) = if self.staged.is_some() {
            // Reload in flight: policy weights are about to be
            // swapped; recurrent state is left untouched (it is reset
            // at commit anyway) and every agent falls back.
            (
                fb_actions,
                vec![true; n],
                Some(DegradeReason::ReloadInFlight),
            )
        } else if self.policy.shared() {
            self.step_batched(obs, fb_actions, t0)
        } else {
            self.step_per_agent(obs, fb_actions, t0)
        };
        let latency = t0.elapsed();
        self.telemetry
            .record(latency, &fell_back, degraded.is_some());
        Ok(ServeStep {
            actions,
            fell_back,
            latency,
            degraded,
        })
    }

    fn partners(&mut self, obs: &[IntersectionObs]) -> Vec<usize> {
        match self.policy.config().pairing {
            PairingMode::CongestedUpstream => self.policy.pairing().partners(obs),
            PairingMode::SelfLoop => self.policy.pairing().self_partners(),
            PairingMode::RandomUpstream => self.policy.pairing().random_partners(&mut self.rng),
        }
    }

    /// Greedy action for row `r` of `self.probs`, replicating the
    /// training controller's mask + renormalize + argmax exactly.
    fn greedy_action(&mut self, r: usize, num_phases: usize) -> usize {
        self.masked.clear();
        self.masked
            .extend_from_slice(&self.probs.row(r)[..num_phases]);
        let sum: f32 = self.masked.iter().sum();
        for p in &mut self.masked {
            *p /= sum.max(1e-8);
        }
        Categorical::new(&self.masked).argmax()
    }

    /// Shared-parameter path: all agents in one `N × D` forward.
    fn step_batched(
        &mut self,
        obs: &[IntersectionObs],
        fb_actions: Vec<usize>,
        t0: Instant,
    ) -> (Vec<usize>, Vec<bool>, Option<DegradeReason>) {
        let n = self.policy.num_agents();
        let cfg = *self.policy.config();
        let local_dim = self.policy.encoder().local_dim();
        let partners = self.partners(obs);
        self.extra_allocs += self.x.ensure_shape(n, local_dim + cfg.bandwidth) as u64;
        for a in 0..n {
            let (local, msg) = self.x.row_mut(a).split_at_mut(local_dim);
            self.policy.encoder().encode_local_into(&obs[a], local);
            msg.copy_from_slice(&self.messages[partners[a]]);
        }
        if let Some(delay) = self.injected_delay {
            std::thread::sleep(delay);
        }
        let (params, actor) = &self.policy.actors()[0];
        let state = &self.states[0];
        actor.infer(params, &self.x, &state.h, &state.c, &mut self.bufs);
        self.extra_allocs += self.probs.ensure_shape(n, cfg.max_phases) as u64;
        tsc_nn::softmax_rows_into(&self.bufs.logits, &mut self.probs);
        let actions: Vec<usize> = (0..n)
            .map(|a| self.greedy_action(a, self.policy.phases_per_agent()[a]))
            .collect();
        if cfg.bandwidth > 0 {
            for a in 0..n {
                for (dst, &raw) in self.next_messages[a]
                    .iter_mut()
                    .zip(self.bufs.message.row(a))
                {
                    *dst = logistic(raw);
                }
            }
        }
        // Commit recurrent state and messages even on overrun: the
        // forward already ran, and keeping the policy's state warm
        // means recovery after a slow step needs no re-warmup.
        let state = &mut self.states[0];
        state.h.copy_from(&self.bufs.h);
        state.c.copy_from(&self.bufs.c);
        std::mem::swap(&mut self.messages, &mut self.next_messages);
        match self.cfg.deadline {
            // The batch is all-or-nothing: an overrun degrades every
            // agent for this step.
            Some(deadline) if t0.elapsed() > deadline => (
                fb_actions,
                vec![true; n],
                Some(DegradeReason::DeadlineOverrun),
            ),
            _ => (actions, vec![false; n], None),
        }
    }

    /// Independent-parameter path: one `1 × D` forward per agent, with
    /// the deadline checked before each agent.
    fn step_per_agent(
        &mut self,
        obs: &[IntersectionObs],
        fb_actions: Vec<usize>,
        t0: Instant,
    ) -> (Vec<usize>, Vec<bool>, Option<DegradeReason>) {
        let n = self.policy.num_agents();
        let cfg = *self.policy.config();
        let local_dim = self.policy.encoder().local_dim();
        let partners = self.partners(obs);
        let mut actions = fb_actions;
        let mut fell_back = vec![false; n];
        let mut degraded = None;
        for a in 0..n {
            if let Some(deadline) = self.cfg.deadline {
                if t0.elapsed() > deadline {
                    // Budget exhausted: the rest of the grid keeps its
                    // fallback actions and carries message + LSTM
                    // state forward unchanged.
                    for (b, fb) in fell_back.iter_mut().enumerate().skip(a) {
                        *fb = true;
                        let (dst, src) = (&mut self.next_messages[b], &self.messages[b]);
                        dst.copy_from_slice(src);
                    }
                    degraded = Some(DegradeReason::DeadlineOverrun);
                    break;
                }
            }
            if let Some(delay) = self.injected_delay {
                std::thread::sleep(delay);
            }
            self.extra_allocs += self.x.ensure_shape(1, local_dim + cfg.bandwidth) as u64;
            let (local, msg) = self.x.row_mut(0).split_at_mut(local_dim);
            self.policy.encoder().encode_local_into(&obs[a], local);
            msg.copy_from_slice(&self.messages[partners[a]]);
            let (params, actor) = &self.policy.actors()[a];
            let state = &self.states[a];
            actor.infer(params, &self.x, &state.h, &state.c, &mut self.bufs);
            self.extra_allocs += self.probs.ensure_shape(1, cfg.max_phases) as u64;
            tsc_nn::softmax_rows_into(&self.bufs.logits, &mut self.probs);
            actions[a] = self.greedy_action(0, self.policy.phases_per_agent()[a]);
            if cfg.bandwidth > 0 {
                for (dst, &raw) in self.next_messages[a]
                    .iter_mut()
                    .zip(self.bufs.message.row(0))
                {
                    *dst = logistic(raw);
                }
            }
            let state = &mut self.states[a];
            state.h.copy_from(&self.bufs.h);
            state.c.copy_from(&self.bufs.c);
        }
        std::mem::swap(&mut self.messages, &mut self.next_messages);
        (actions, fell_back, degraded)
    }
}

impl Controller for ServeRuntime {
    fn reset(&mut self) {
        self.reset_state();
    }

    fn decide(&mut self, obs: &[IntersectionObs]) -> Vec<usize> {
        self.serve_step(obs)
            .expect("environment agent count matches the served policy")
            .actions
    }
}
