//! The multi-tenant serving fleet: N independent [`ServeRuntime`]s
//! under per-tenant supervision, with crash isolation, circuit
//! breakers, deterministic recovery, and infrastructure chaos.
//!
//! ## Isolation model
//!
//! Each tenant owns its grid, its policy runtime, its warm-standby
//! [`MaxPressureController`], and its [`Supervisor`] — there is **no
//! shared mutable state between tenants**, so any tenant's failure is
//! invisible in every other tenant's output (pinned bit-for-bit by a
//! tier-1 test). A tenant's policy step runs under
//! [`catch_unwind`](std::panic::catch_unwind): a panic never takes the
//! process down; the panicking tenant answers with its standby's
//! MaxPressure actions for that step and is quarantined.
//!
//! The fleet keeps its own standby *outside* the [`ServeRuntime`]
//! (which has an internal fallback of its own) because after a panic
//! the runtime's in-memory state is untrusted and after a reload the
//! runtime is rebuilt from scratch — the fleet-level standby's
//! min-hold counters stay continuous across both, so degraded service
//! never cold-resets mid-episode.
//!
//! ## Supervision loop
//!
//! Per tenant and step (see [`Supervisor`] for the state machine):
//! Healthy/Recovering tenants serve their policy and feed the breaker
//! window with step outcomes (typed errors and deadline overruns are
//! soft faults); Degraded tenants serve standby until their
//! deterministic backoff expires, then re-try the policy on probation;
//! Quarantined tenants serve standby and periodically reload their
//! last good checkpoint under a bounded retry budget — with the budget
//! exhausted they stay quarantined quietly forever (no hot-looping).
//!
//! ## Admission and the brownout ladder
//!
//! With [`FleetConfig::admission`] configured, every step first runs
//! the SLA-aware [`Admission`] controller over the offered load
//! (declared per tenant via [`FleetRuntime::step_with_load`]; plain
//! [`step`](FleetRuntime::step) offers 1 request per tenant). Each
//! tenant is assigned a [`ServiceLevel`]: `Full` serves exactly as
//! without admission; `Degraded` decimates inference (the policy
//! forward runs every other step, the previous plan is held in
//! between); `Standby` answers from the warm standby; `Shed` refuses
//! the step and holds the previous plan. **Supervision outranks
//! admission**: a Degraded/Quarantined tenant's recovery schedule is
//! untouched, and browned-out steps neither feed the circuit breaker
//! nor consume retry trials. With `admission: None` (the default) or
//! no overload the fleet is bit-identical to one without the layer —
//! pinned by a digest test.
//!
//! ## Determinism
//!
//! With the default [`FleetClock::Steps`] clock there is **zero
//! wall-clock dependence**: backoff, retries, every
//! [`InfraChaosPlan`] decision, and every admission/shedding decision
//! are functions of the fleet step index and pure hashes. An empty
//! plan is bit-identical to no plan, and the same seed + plan + load
//! replays bit-for-bit ([`FleetStep::digest`] pins whole runs).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use pairuplight::{Checkpoint, PolicySnapshot, TrainError};
use tsc_baselines::MaxPressureController;
use tsc_obs::flight::NO_DEADLINE;
use tsc_obs::{
    escape_label_value, fleet_event, write_incident, EventSink, FleetEventKind, FlightFrame,
    FlightRecorder, FlightTrigger, Histogram, Incident, Json, MetricsRegistry,
};
use tsc_sim::{Controller, IntersectionObs};

use crate::admission::{Admission, AdmissionConfig, ServiceLevel, SlaClass};
use crate::engine::{DegradeReason, ServeConfig, ServeRuntime};
use crate::error::ServeError;
use crate::infra_chaos::{InfraChaosPlan, TenantSel};
use crate::supervisor::{Supervisor, SupervisorConfig, TenantState};
use crate::telemetry::ServeTelemetry;

/// What drives the fleet's supervision timers (backoff, retry
/// schedules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetClock {
    /// One tick per fleet step — fully virtual, bit-reproducible, the
    /// default (and the only mode the determinism pins run under).
    #[default]
    Steps,
    /// Milliseconds of wall time since the fleet was built — for
    /// production loops whose step cadence is externally paced.
    Wall,
}

/// Fleet-wide configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetConfig {
    /// Supervision knobs applied to every tenant.
    pub supervisor: SupervisorConfig,
    /// Timer source for backoff/retry scheduling.
    pub clock: FleetClock,
    /// Seed keying infra-chaos draws, per-tenant backoff jitter, and
    /// admission tie-breaks.
    pub seed: u64,
    /// SLA-aware admission control. `None` (the default) disables the
    /// layer entirely — the fleet is bit-identical to one built before
    /// it existed.
    pub admission: Option<AdmissionConfig>,
    /// Per-tenant flight recording. `None` (the default) disables the
    /// recorder; enabled or disabled, the fleet's decisions are
    /// bit-identical — recording is strictly observation-only (pinned
    /// by a tier-1 digest test).
    pub flight: Option<FlightConfig>,
}

/// Flight-recorder knobs ([`FleetConfig::flight`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightConfig {
    /// Ring capacity in frames per tenant (the incident lookback
    /// window; clamped ≥ 1).
    pub capacity: usize,
    /// Minimum fleet steps between two automatic incident dumps of
    /// the same tenant — a flapping tenant produces one incident per
    /// cooldown window, not one per step. Explicit
    /// [`FleetRuntime::snapshot`] dumps bypass the cooldown.
    pub cooldown: u64,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            capacity: 256,
            cooldown: 64,
        }
    }
}

/// In-memory incident tail bound ([`FleetRuntime::take_incidents`]);
/// older incidents survive only as files.
pub const MAX_HELD_INCIDENTS: usize = 64;

/// FNV-1a digest of a joint observation, bit-exact over every field
/// (floats hashed by their IEEE-754 bits). The flight recorder's
/// `obs_digest` and the forensics replayer both use this, so a clean
/// replay matches frame-for-frame. Word-wise mixing (not byte-wise):
/// this runs on every serving step of every tenant, and an 8× cheaper
/// fold detects divergence exactly as well.
pub fn obs_digest(obs: &[IntersectionObs]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for o in obs {
        mix(o.node.0 as u64);
        mix(u64::from(o.time));
        mix(o.current_phase as u64);
        mix(o.num_phases as u64);
        mix(o.incoming.len() as u64);
        for lane in &o.incoming {
            mix(lane.link.0 as u64);
            mix(lane.direction as u64);
            mix(lane.count.to_bits());
            mix(lane.halting.to_bits());
            for m in lane.halting_by_movement {
                mix(m.to_bits());
            }
            mix(lane.head_wait.to_bits());
        }
        mix(o.outgoing_counts.len() as u64);
        for c in &o.outgoing_counts {
            mix(c.to_bits());
        }
        for l in &o.outgoing_links {
            mix(l.0 as u64);
        }
    }
    h
}

/// FNV-1a digest of a signal plan (chosen phase per intersection),
/// word-wise like [`obs_digest`].
pub fn actions_digest(actions: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &a in actions {
        h ^= a as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Flight-recorder health across the fleet, for live exposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightHealth {
    /// Whether recording is configured at all.
    pub enabled: bool,
    /// Frames recorded across all tenants (lifetime).
    pub frames_recorded: u64,
    /// Frames overwritten by ring wraparound across all tenants.
    pub frames_dropped: u64,
    /// Incidents dumped (automatic triggers + snapshots).
    pub incidents_dumped: u64,
    /// The most recent dump: `(tenant, trigger, fleet step)`.
    pub last_trigger: Option<(usize, FlightTrigger, u64)>,
}

/// One [`FleetRuntime::exposition`] snapshot: the Prometheus text
/// page plus the same content as structured JSON (written alongside
/// `BENCH_*.json` reports).
#[derive(Debug, Clone)]
pub struct FleetExposition {
    /// Prometheus text exposition format (metric names and label
    /// values escaped per the format's rules).
    pub prometheus: String,
    /// The same snapshot as a JSON object.
    pub summary: Json,
}

/// Everything needed to host one tenant.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Operator-facing tenant name (events, reports).
    pub name: String,
    /// The deployed policy.
    pub snapshot: PolicySnapshot,
    /// Serving knobs for this tenant's runtime.
    pub serve_cfg: ServeConfig,
    /// Last good checkpoint on disk — the quarantine-recovery source
    /// (and the reload-storm target). `None` recovers from the
    /// in-memory last good snapshot instead.
    pub checkpoint: Option<PathBuf>,
    /// The tenant's service-level agreement (priority, latency target,
    /// max shed rate), consulted by admission control. The default is
    /// priority 0, no latency target, never shed.
    pub sla: SlaClass,
}

/// Who produced a tenant's actions this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// The tenant's policy runtime (possibly with its own internal
    /// per-agent fallbacks — see the tenant's [`ServeTelemetry`]).
    Policy,
    /// The fleet-level warm-standby MaxPressure controller.
    Standby,
    /// Nobody: the tenant's previous signal plan was held without
    /// running any controller (a decimated-inference off-step or a
    /// shed step).
    Held,
}

impl ServedBy {
    /// Stable dense index (digest, telemetry, and flight-frame
    /// material).
    pub fn index(self) -> usize {
        match self {
            ServedBy::Policy => 0,
            ServedBy::Standby => 1,
            ServedBy::Held => 2,
        }
    }
}

/// One tenant's slice of a [`FleetStep`].
#[derive(Debug, Clone)]
pub struct TenantStep {
    /// Chosen phase per intersection of this tenant's grid.
    pub actions: Vec<usize>,
    /// Supervisor state *after* this step.
    pub state: TenantState,
    /// Which controller answered.
    pub served_by: ServedBy,
    /// Whether the tenant's policy step panicked this step (caught and
    /// isolated; `actions` are the standby's).
    pub panicked: bool,
    /// Where admission control placed the tenant on the brownout
    /// ladder ([`ServiceLevel::Full`] whenever admission is disabled).
    pub level: ServiceLevel,
    /// Wall time of this tenant's full fleet step (supervision
    /// included). Excluded from [`FleetStep::digest`] — wall time is
    /// not replayable.
    pub latency: Duration,
}

impl TenantStep {
    /// Internal constructor: admission level and latency are stamped
    /// by the fleet loop after the fact.
    fn new(actions: Vec<usize>, state: TenantState, served_by: ServedBy, panicked: bool) -> Self {
        TenantStep {
            actions,
            state,
            served_by,
            panicked,
            level: ServiceLevel::Full,
            latency: Duration::ZERO,
        }
    }
}

/// The outcome of one fleet step: every tenant answered, every step,
/// no matter what failed.
#[derive(Debug, Clone)]
pub struct FleetStep {
    /// Per-tenant outcomes, in tenant order.
    pub tenants: Vec<TenantStep>,
}

impl FleetStep {
    /// FNV-1a digest over every tenant's actions, state, serving
    /// source, and admission level — fold the per-step digests to pin
    /// a whole run bit-for-bit (latency is deliberately excluded).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u64| {
            h ^= byte;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for t in &self.tenants {
            mix(t.state.index() as u64);
            mix(t.served_by.index() as u64);
            mix(t.level.index() as u64);
            mix(t.panicked as u64);
            mix(t.actions.len() as u64);
            for &a in &t.actions {
                mix(a as u64);
            }
        }
        h
    }
}

/// Fleet-level counters for one tenant (the supervision story the
/// per-runtime [`ServeTelemetry`] cannot see: panics, breaker cycles,
/// quarantines, reload attempts, recovery latency).
#[derive(Debug, Clone, Default)]
pub struct TenantStats {
    /// Fleet steps this tenant has been served for.
    pub steps: u64,
    /// Steps answered by the fleet-level standby.
    pub standby_steps: u64,
    /// Caught policy panics.
    pub panics: u64,
    /// Policy soft faults (typed errors + deadline overruns).
    pub soft_faults: u64,
    /// Circuit-breaker openings.
    pub breaker_trips: u64,
    /// Breaker closings (probation passed).
    pub breaker_closes: u64,
    /// Quarantine entries.
    pub quarantines: u64,
    /// Full quarantine → Healthy recovery cycles.
    pub recoveries: u64,
    /// Checkpoint reload attempts while quarantined.
    pub reload_attempts: u64,
    /// Failed reload attempts (corrupt checkpoint, injected fault).
    pub reload_failures: u64,
    /// Clock ticks spent from each quarantine entry to the completed
    /// recovery, summed (divide by [`recoveries`](Self::recoveries)
    /// for the mean recovery latency).
    pub recovery_ticks_total: u64,
    /// Steps spent in each supervisor state, indexed by
    /// [`TenantState::index`].
    pub state_steps: [u64; TenantState::COUNT],
    /// Staged checkpoints swapped live (zero-degradation hot swaps).
    pub hot_swaps: u64,
    /// Steps admission control served below full quality (decimated,
    /// standby, or shed).
    pub brownout_steps: u64,
    /// Steps admission control refused outright.
    pub shed_steps: u64,
}

/// One hosted tenant: runtime + standby + supervisor + recovery
/// sources.
#[derive(Debug)]
struct Tenant {
    name: String,
    runtime: ServeRuntime,
    standby: MaxPressureController,
    supervisor: Supervisor,
    /// The snapshot recovery falls back to when no on-disk checkpoint
    /// is configured; refreshed on every successful reload.
    last_good: PolicySnapshot,
    serve_cfg: ServeConfig,
    checkpoint: Option<PathBuf>,
    /// Telemetry of runtimes retired by reloads, folded together so
    /// [`FleetRuntime::tenant_telemetry`] spans the tenant's whole
    /// life ([`ServeTelemetry::merge`] is load-bearing here).
    archive: ServeTelemetry,
    /// Clock tick of the current quarantine entry (recovery latency).
    quarantined_since: Option<u64>,
    stats: TenantStats,
    /// Wall time of each full tenant step (supervision included).
    step_latency: Histogram,
    /// The most recent signal plan handed out — what a held (decimated
    /// off-step or shed) step answers with. Empty until the first
    /// served step.
    last_actions: Vec<usize>,
    /// Whether the previous admission decision was below full service
    /// (brownout enter/exit event edge detection).
    browned_out: bool,
    /// The tenant's SLA (from its [`TenantSpec`]).
    sla: SlaClass,
    /// Flight ring ([`FleetConfig::flight`]; `None` = recording off).
    flight: Option<FlightRecorder>,
    /// Fleet step of this tenant's last incident dump (automatic-dump
    /// cooldown).
    last_dump_step: Option<u64>,
}

/// A supervised multi-tenant serving fleet. See the module docs for
/// the isolation and supervision model.
#[derive(Debug)]
pub struct FleetRuntime {
    cfg: FleetConfig,
    tenants: Vec<Tenant>,
    plan: InfraChaosPlan,
    /// SLA-aware admission controller ([`FleetConfig::admission`];
    /// `None` = layer disabled, every step is `Full`).
    admission: Option<Admission>,
    /// Fleet steps served so far (the `Steps` clock and the chaos
    /// plan's time base).
    step: u64,
    epoch: Instant,
    obs_sink: Option<EventSink>,
    /// Where incident files are written (`None` = in-memory only).
    incident_dir: Option<PathBuf>,
    /// The replay context stamped into every dumped incident — set it
    /// to whatever reconstructs this fleet's world deterministically
    /// (scenario fingerprint, seed, plans, checkpoint ids).
    replay_context: Json,
    /// Bounded in-memory tail of dumped incidents (newest last).
    incidents: Vec<Incident>,
    /// Files written so far (dump order).
    incident_paths: Vec<PathBuf>,
    incidents_dumped: u64,
    last_trigger: Option<(usize, FlightTrigger, u64)>,
}

impl FleetRuntime {
    /// Builds a fleet hosting `specs`, all tenants Healthy, no infra
    /// chaos installed.
    pub fn new(cfg: FleetConfig, specs: Vec<TenantSpec>) -> Self {
        let admission = cfg
            .admission
            .map(|acfg| Admission::new(acfg, specs.iter().map(|s| s.sla).collect(), cfg.seed));
        let tenants = specs
            .into_iter()
            .enumerate()
            .map(|(idx, spec)| {
                // Same salt scheme as the chaos engine: decorrelate
                // each tenant's jitter stream from the shared seed.
                let salt = tsc_sim::chaos::fault_salt(cfg.seed ^ 0x000F_1EE7, idx);
                Tenant {
                    standby: MaxPressureController::new(spec.serve_cfg.fallback_min_hold.max(1)),
                    runtime: ServeRuntime::new(spec.snapshot.clone(), spec.serve_cfg),
                    supervisor: Supervisor::new(cfg.supervisor, salt),
                    archive: ServeTelemetry::new(spec.snapshot.num_agents()),
                    last_good: spec.snapshot,
                    serve_cfg: spec.serve_cfg,
                    checkpoint: spec.checkpoint,
                    name: spec.name,
                    quarantined_since: None,
                    stats: TenantStats::default(),
                    step_latency: Histogram::new(),
                    last_actions: Vec::new(),
                    browned_out: false,
                    sla: spec.sla,
                    flight: cfg.flight.map(|fc| FlightRecorder::new(fc.capacity)),
                    last_dump_step: None,
                }
            })
            .collect();
        FleetRuntime {
            cfg,
            tenants,
            plan: InfraChaosPlan::new(),
            admission,
            step: 0,
            epoch: Instant::now(),
            obs_sink: None,
            incident_dir: None,
            replay_context: Json::Null,
            incidents: Vec::new(),
            incident_paths: Vec::new(),
            incidents_dumped: 0,
            last_trigger: None,
        }
    }

    /// Number of hosted tenants.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Tenant names, in tenant order.
    pub fn names(&self) -> Vec<&str> {
        self.tenants.iter().map(|t| t.name.as_str()).collect()
    }

    /// Fleet steps served so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// The supervisor state of tenant `t`.
    pub fn tenant_state(&self, t: usize) -> TenantState {
        self.tenants[t].supervisor.state()
    }

    /// Fleet-level counters for tenant `t`.
    pub fn tenant_stats(&self, t: usize) -> &TenantStats {
        &self.tenants[t].stats
    }

    /// The SLA class of tenant `t` (from its spec).
    pub fn tenant_sla(&self, t: usize) -> SlaClass {
        self.tenants[t].sla
    }

    /// The admission controller, when [`FleetConfig::admission`] is
    /// configured (per-tenant shed/step counters live here).
    pub fn admission(&self) -> Option<&Admission> {
        self.admission.as_ref()
    }

    /// Wall-time histogram of tenant `t`'s full fleet steps
    /// (supervision + whichever controller served).
    pub fn tenant_step_latency(&self, t: usize) -> &Histogram {
        &self.tenants[t].step_latency
    }

    /// Serving telemetry of tenant `t` across its whole life: the
    /// live runtime's telemetry merged with every runtime retired by a
    /// recovery reload.
    pub fn tenant_telemetry(&self, t: usize) -> ServeTelemetry {
        let tenant = &self.tenants[t];
        let mut out = tenant.archive.clone();
        out.merge(tenant.runtime.telemetry());
        out
    }

    /// Installs an infrastructure chaos plan (replacing any previous
    /// one). An empty plan leaves the fleet bit-identical to one that
    /// never had a plan installed.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidInfraChaos`] when a fault targets a tenant
    /// index outside the fleet.
    pub fn set_infra_chaos(&mut self, plan: InfraChaosPlan) -> Result<(), ServeError> {
        let n = self.tenants.len();
        for fault in plan.faults() {
            if let TenantSel::One(t) = fault.tenants {
                if t >= n {
                    return Err(ServeError::InvalidInfraChaos {
                        tenant: t,
                        tenants: n,
                    });
                }
            }
        }
        self.plan = plan;
        Ok(())
    }

    /// Attaches a JSONL sink for fleet lifecycle events (breaker
    /// open/close, quarantine enter/exit, recovery outcomes).
    /// Out-of-band: fleet behavior is unchanged; the sink is dropped
    /// with a stderr warning on the first write failure.
    pub fn attach_obs(&mut self, sink: EventSink) {
        self.obs_sink = Some(sink);
    }

    /// Detaches the event sink, returning it. `None` when none was
    /// attached.
    pub fn detach_obs(&mut self) -> Option<EventSink> {
        self.obs_sink.take()
    }

    /// Current supervision clock tick.
    fn now(&self) -> u64 {
        match self.cfg.clock {
            FleetClock::Steps => self.step,
            FleetClock::Wall => u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX),
        }
    }

    /// Serves one decision step for every tenant at an offered load of
    /// one request per tenant. `obs[t]` is tenant `t`'s joint
    /// observation. Always returns actions for every tenant — panics
    /// are caught, faults are absorbed by the fallback ladder.
    ///
    /// # Errors
    ///
    /// [`ServeError::TenantCountMismatch`] when `obs` does not match
    /// the fleet's tenant count. (Per-tenant failures never surface
    /// here — they degrade that tenant only.)
    pub fn step(&mut self, obs: &[&[IntersectionObs]]) -> Result<FleetStep, ServeError> {
        self.step_impl(obs, None)
    }

    /// [`step`](Self::step) with an explicit offered load: `offered[t]`
    /// is the number of requests tenant `t` brings this step (clamped
    /// to ≥ 1). Only admission control reads the load — without
    /// [`FleetConfig::admission`] this is exactly `step`.
    ///
    /// # Errors
    ///
    /// [`ServeError::TenantCountMismatch`] /
    /// [`ServeError::OfferedLoadMismatch`] when `obs` or `offered` do
    /// not match the fleet's tenant count.
    pub fn step_with_load(
        &mut self,
        obs: &[&[IntersectionObs]],
        offered: &[u64],
    ) -> Result<FleetStep, ServeError> {
        if offered.len() != self.tenants.len() {
            return Err(ServeError::OfferedLoadMismatch {
                got: offered.len(),
                expected: self.tenants.len(),
            });
        }
        self.step_impl(obs, Some(offered))
    }

    fn step_impl(
        &mut self,
        obs: &[&[IntersectionObs]],
        offered: Option<&[u64]>,
    ) -> Result<FleetStep, ServeError> {
        if obs.len() != self.tenants.len() {
            return Err(ServeError::TenantCountMismatch {
                got: obs.len(),
                expected: self.tenants.len(),
            });
        }
        let step = self.step;
        let now = self.now();
        let seed = self.cfg.seed;
        // Admission runs first, over every tenant at once (levels are
        // a fleet-wide budget decision); the per-tenant loop then
        // dispatches under the assigned level. Admission disabled ⇒
        // no decision is computed at all.
        let decided: Option<(Vec<ServiceLevel>, Vec<bool>)> = self.admission.as_mut().map(|adm| {
            let agents: Vec<usize> = self
                .tenants
                .iter()
                .map(|t| t.last_good.num_agents())
                .collect();
            let ones: Vec<u64>;
            let off: &[u64] = match offered {
                Some(o) => o,
                None => {
                    ones = vec![1; agents.len()];
                    &ones
                }
            };
            let levels = adm.decide(step, off, &agents);
            let forwards = (0..agents.len())
                .map(|t| adm.forward_due(step, t))
                .collect();
            (levels, forwards)
        });
        let mut events: Vec<(usize, FleetEventKind)> = Vec::new();
        let mut out = Vec::with_capacity(self.tenants.len());
        // Flight triggers collected during the tenant loop, dumped
        // after it (dumping needs the whole runtime).
        let mut triggers: Vec<(usize, FlightTrigger)> = Vec::new();
        for (idx, tenant) in self.tenants.iter_mut().enumerate() {
            let (level, forward_due) = match &decided {
                Some((levels, forwards)) => (levels[idx], forwards[idx]),
                None => (ServiceLevel::Full, true),
            };
            if decided.is_some() {
                tenant
                    .archive
                    .record_admission(level, offered.map_or(1, |o| o[idx].max(1)));
                if level.browned_out() != tenant.browned_out {
                    tenant.browned_out = level.browned_out();
                    events.push((
                        idx,
                        if tenant.browned_out {
                            FleetEventKind::BrownoutEnter
                        } else {
                            FleetEventKind::BrownoutExit
                        },
                    ));
                }
                if level.browned_out() {
                    tenant.stats.brownout_steps += 1;
                }
                if level == ServiceLevel::Shed {
                    tenant.stats.shed_steps += 1;
                    events.push((idx, FleetEventKind::Shed));
                }
            }
            let events_before = events.len();
            let t0 = Instant::now();
            let mut step_out = Self::step_tenant(
                tenant,
                idx,
                obs[idx],
                &self.plan,
                seed,
                step,
                now,
                level,
                forward_due,
                &mut events,
            );
            let dt = t0.elapsed();
            tenant.step_latency.record(dt);
            step_out.level = level;
            step_out.latency = dt;
            tenant.last_actions.clone_from(&step_out.actions);
            tenant.stats.steps += 1;
            tenant.stats.state_steps[step_out.state.index()] += 1;
            if matches!(step_out.served_by, ServedBy::Standby) {
                tenant.stats.standby_steps += 1;
            }
            // Flight recording: strictly observation-only — nothing
            // below feeds back into any decision, so the recorder-on
            // fleet digests bit-identical to recorder-off (pinned).
            if tenant.flight.is_some() {
                let slack_us = match tenant.serve_cfg.deadline {
                    Some(d) => i64::try_from(d.as_micros())
                        .unwrap_or(i64::MAX)
                        .saturating_sub(i64::try_from(dt.as_micros()).unwrap_or(i64::MAX)),
                    None => NO_DEADLINE,
                };
                let frame = FlightFrame {
                    step,
                    obs_digest: obs_digest(obs[idx]),
                    msg_digest: tenant.runtime.last_message_digest(),
                    actions_digest: actions_digest(&step_out.actions),
                    served_by: step_out.served_by.index() as u8,
                    level: level.index() as u8,
                    state: step_out.state.index() as u8,
                    panicked: step_out.panicked,
                    offered: offered.map_or(1, |o| o[idx].max(1)),
                    chaos_mask: self.plan.active_mask(step, idx),
                    slack_us,
                };
                if let Some(rec) = tenant.flight.as_mut() {
                    rec.record(frame);
                }
                // Trigger priority: a panic explains the breaker trip
                // and the quarantine it may have caused this very step,
                // so only the most causal trigger dumps.
                let had = |kind: FleetEventKind| {
                    events[events_before..]
                        .iter()
                        .any(|&(t, k)| t == idx && k == kind)
                };
                let trigger = if step_out.panicked {
                    Some(FlightTrigger::Panic)
                } else if had(FleetEventKind::QuarantineEnter) {
                    Some(FlightTrigger::Quarantine)
                } else if had(FleetEventKind::BreakerOpen) {
                    Some(FlightTrigger::BreakerOpen)
                } else if level == ServiceLevel::Shed
                    && self
                        .admission
                        .as_ref()
                        .is_some_and(|a| a.shed_budget_exhausted(idx))
                {
                    Some(FlightTrigger::ShedCap)
                } else {
                    None
                };
                if let Some(tr) = trigger {
                    triggers.push((idx, tr));
                }
            }
            out.push(step_out);
        }
        for (idx, trigger) in triggers {
            self.auto_dump(idx, trigger, step, &mut events);
        }
        self.step += 1;
        self.emit(step, &events);
        Ok(FleetStep { tenants: out })
    }

    /// One tenant's slice of a fleet step: chaos injection, state
    /// dispatch, crash isolation, supervision bookkeeping.
    ///
    /// Supervision outranks admission: the supervisor's recovery
    /// schedule runs regardless of `level`, and a browned-out step
    /// neither feeds the circuit breaker nor consumes a retry trial
    /// (the policy never ran, so its health was not observed).
    #[allow(clippy::too_many_arguments)]
    fn step_tenant(
        tenant: &mut Tenant,
        idx: usize,
        obs: &[IntersectionObs],
        plan: &InfraChaosPlan,
        seed: u64,
        step: u64,
        now: u64,
        level: ServiceLevel,
        forward_due: bool,
        events: &mut Vec<(usize, FleetEventKind)>,
    ) -> TenantStep {
        // Warm standby first: its min-hold counters must advance every
        // step regardless of who answers, so a degraded step continues
        // the plan instead of cold-resetting it.
        let fb_actions = tenant.standby.decide(obs);
        // Latency spikes are injected unconditionally (None clears):
        // the code path is identical with and without a plan, which is
        // what makes the empty plan bit-identical to no plan.
        tenant.runtime.inject_delay(plan.spike(seed, step, idx));
        // Reload storm: commit last step's staged reload (a
        // zero-degradation hot swap — the old policy served every step
        // in between), then stage the next one. Only meaningful for
        // policy-serving tenants with an on-disk checkpoint.
        if tenant.supervisor.state().serves_policy() {
            if tenant.runtime.reload_in_flight() && tenant.runtime.commit_reload().is_ok() {
                tenant.stats.hot_swaps += 1;
                events.push((idx, FleetEventKind::ReloadSwapped));
            }
            if plan.storm_due(step, idx) {
                if let Some(path) = &tenant.checkpoint {
                    if tenant.runtime.begin_reload(path).is_ok() {
                        events.push((idx, FleetEventKind::ReloadStaged));
                    }
                }
            }
        }

        // Whether the admission level lets the policy forward run this
        // step (decimated inference only forwards on its on-steps).
        let policy_due =
            level == ServiceLevel::Full || (level == ServiceLevel::Degraded && forward_due);
        match tenant.supervisor.state() {
            TenantState::Quarantined => {
                if tenant.supervisor.retry_due(now) {
                    Self::attempt_reload(tenant, idx, plan, seed, step, now, events);
                }
                TenantStep::new(
                    fb_actions,
                    tenant.supervisor.state(),
                    ServedBy::Standby,
                    false,
                )
            }
            TenantState::Degraded => {
                if policy_due && tenant.supervisor.retry_due(now) {
                    tenant.supervisor.begin_trial();
                    Self::policy_step(tenant, idx, obs, fb_actions, plan, seed, step, now, events)
                } else {
                    TenantStep::new(fb_actions, TenantState::Degraded, ServedBy::Standby, false)
                }
            }
            TenantState::Healthy | TenantState::Recovering => match level {
                _ if policy_due => {
                    Self::policy_step(tenant, idx, obs, fb_actions, plan, seed, step, now, events)
                }
                ServiceLevel::Standby => TenantStep::new(
                    fb_actions,
                    tenant.supervisor.state(),
                    ServedBy::Standby,
                    false,
                ),
                // A decimated off-step or a shed step: hold the last
                // plan without running any controller (the standby
                // answers only when there is nothing to hold yet).
                _ => Self::held_step(tenant, fb_actions),
            },
        }
    }

    /// Answers with the tenant's previous signal plan without running
    /// any controller; falls back to the standby's actions when no
    /// plan has been handed out yet (or the grid changed shape).
    fn held_step(tenant: &Tenant, fb_actions: Vec<usize>) -> TenantStep {
        let state = tenant.supervisor.state();
        if tenant.last_actions.len() == fb_actions.len() {
            TenantStep::new(tenant.last_actions.clone(), state, ServedBy::Held, false)
        } else {
            TenantStep::new(fb_actions, state, ServedBy::Standby, false)
        }
    }

    /// Runs the tenant's policy under crash isolation and feeds the
    /// breaker with the outcome.
    #[allow(clippy::too_many_arguments)]
    fn policy_step(
        tenant: &mut Tenant,
        idx: usize,
        obs: &[IntersectionObs],
        fb_actions: Vec<usize>,
        plan: &InfraChaosPlan,
        seed: u64,
        step: u64,
        now: u64,
        events: &mut Vec<(usize, FleetEventKind)>,
    ) -> TenantStep {
        let was = tenant.supervisor.state();
        let inject_panic = plan.panics(seed, step, idx);
        let runtime = &mut tenant.runtime;
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected tenant panic (infra chaos)");
            }
            runtime.serve_step(obs)
        }));
        match result {
            Ok(Ok(served)) => {
                // Deadline overruns are the tenant's soft faults; the
                // runtime's own health/reload degradations are already
                // the fallback ladder doing its job, not breaker food.
                let fault = served
                    .causes
                    .iter()
                    .any(|c| matches!(c, Some(DegradeReason::DeadlineOverrun)));
                if fault {
                    tenant.stats.soft_faults += 1;
                }
                if let Some(state) = tenant.supervisor.record_step(fault, now) {
                    Self::note_transition(tenant, idx, was, state, now, events);
                }
                let state = tenant.supervisor.state();
                // A trip this very step keeps the policy's actions: the
                // forward already ran and answered; standby takes over
                // from the next step.
                TenantStep::new(served.actions, state, ServedBy::Policy, false)
            }
            Ok(Err(_)) => {
                // Typed serve error (e.g. wired to the wrong grid):
                // the standby answers, the breaker counts a fault.
                tenant.stats.soft_faults += 1;
                if let Some(state) = tenant.supervisor.record_step(true, now) {
                    Self::note_transition(tenant, idx, was, state, now, events);
                }
                TenantStep::new(
                    fb_actions,
                    tenant.supervisor.state(),
                    ServedBy::Standby,
                    false,
                )
            }
            Err(_) => {
                tenant.stats.panics += 1;
                let state = tenant.supervisor.record_panic(now);
                Self::note_transition(tenant, idx, was, state, now, events);
                TenantStep::new(fb_actions, state, ServedBy::Standby, true)
            }
        }
    }

    /// One quarantine-recovery reload attempt: load the last good
    /// checkpoint (or clone the in-memory snapshot), rebuild the
    /// runtime, and report the outcome to the supervisor.
    #[allow(clippy::too_many_arguments)]
    fn attempt_reload(
        tenant: &mut Tenant,
        idx: usize,
        plan: &InfraChaosPlan,
        seed: u64,
        step: u64,
        now: u64,
        events: &mut Vec<(usize, FleetEventKind)>,
    ) {
        tenant.stats.reload_attempts += 1;
        let loaded: Result<PolicySnapshot, ServeError> = if plan.corrupts_reload(seed, step, idx) {
            Err(ServeError::Load(TrainError::Load(
                tsc_nn::LoadError::Format("injected reload corruption (infra chaos)".into()),
            )))
        } else if let Some(path) = &tenant.checkpoint {
            Checkpoint::read(path)
                .map_err(TrainError::from)
                .map_err(ServeError::from)
                .and_then(|ck| {
                    tenant
                        .last_good
                        .with_checkpoint(&ck)
                        .map_err(ServeError::from)
                })
        } else {
            Ok(tenant.last_good.clone())
        };
        match loaded {
            Ok(snapshot) => {
                // Retire the untrusted runtime, preserving its
                // telemetry, and start the replacement clean.
                tenant.archive.merge(tenant.runtime.telemetry());
                tenant.runtime = ServeRuntime::new(snapshot.clone(), tenant.serve_cfg);
                tenant.last_good = snapshot;
                let state = tenant.supervisor.reload_result(true, now);
                Self::note_transition(tenant, idx, TenantState::Quarantined, state, now, events);
            }
            Err(_) => {
                tenant.stats.reload_failures += 1;
                tenant.supervisor.reload_result(false, now);
                events.push((idx, FleetEventKind::RecoveryFailed));
            }
        }
    }

    /// Books a supervisor transition into stats + events. `now` feeds
    /// recovery-latency accounting.
    fn note_transition(
        tenant: &mut Tenant,
        idx: usize,
        from: TenantState,
        to: TenantState,
        now: u64,
        events: &mut Vec<(usize, FleetEventKind)>,
    ) {
        match to {
            TenantState::Degraded => {
                tenant.stats.breaker_trips += 1;
                events.push((idx, FleetEventKind::BreakerOpen));
            }
            TenantState::Quarantined => {
                tenant.stats.quarantines += 1;
                if tenant.quarantined_since.is_none() {
                    tenant.quarantined_since = Some(now);
                }
                events.push((idx, FleetEventKind::QuarantineEnter));
            }
            TenantState::Recovering => {
                if from == TenantState::Quarantined {
                    events.push((idx, FleetEventKind::QuarantineExit));
                }
            }
            TenantState::Healthy => {
                tenant.stats.breaker_closes += 1;
                events.push((idx, FleetEventKind::BreakerClose));
                if let Some(since) = tenant.quarantined_since.take() {
                    tenant.stats.recoveries += 1;
                    tenant.stats.recovery_ticks_total += now.saturating_sub(since);
                    events.push((idx, FleetEventKind::RecoveryOk));
                }
            }
        }
    }

    /// Where incident files are written. Without a directory,
    /// incidents are kept in memory only ([`take_incidents`]
    /// (Self::take_incidents)).
    pub fn set_incident_dir(&mut self, dir: PathBuf) {
        self.incident_dir = Some(dir);
    }

    /// Sets the replay context stamped into every incident dumped from
    /// now on — whatever JSON reconstructs this fleet's world
    /// deterministically (scenario text, seed, chaos/load plans,
    /// checkpoint paths). The forensics tool replays incidents from
    /// this context alone.
    pub fn set_replay_context(&mut self, ctx: Json) {
        self.replay_context = ctx;
    }

    /// Drains the in-memory incident tail (oldest first; bounded at
    /// [`MAX_HELD_INCIDENTS`] — older incidents survive only as
    /// files).
    pub fn take_incidents(&mut self) -> Vec<Incident> {
        std::mem::take(&mut self.incidents)
    }

    /// Paths of every incident file written so far, in dump order.
    pub fn incident_paths(&self) -> &[PathBuf] {
        self.incident_paths.as_slice()
    }

    /// Tenant `t`'s flight ring (`None` when recording is disabled).
    pub fn tenant_flight(&self, t: usize) -> Option<&FlightRecorder> {
        self.tenants[t].flight.as_ref()
    }

    /// Tenant `t`'s live serving runtime — read-only, for forensics
    /// (message-plane digests, causal partner maps).
    pub fn tenant_runtime(&self, t: usize) -> &ServeRuntime {
        &self.tenants[t].runtime
    }

    /// Explicitly dumps tenant `t`'s flight ring as a
    /// [`FlightTrigger::Snapshot`] incident, bypassing the
    /// automatic-dump cooldown. Returns the incident (`None` when
    /// recording is disabled), writes the file when an incident
    /// directory is set, and emits an `IncidentDumped` event.
    pub fn snapshot(&mut self, t: usize) -> Option<Incident> {
        let step = self.step;
        let inc = self.dump(t, FlightTrigger::Snapshot, step)?;
        self.emit(step, &[(t, FleetEventKind::IncidentDumped)]);
        Some(inc)
    }

    /// Aggregated flight-recorder health for live exposition.
    pub fn flight_health(&self) -> FlightHealth {
        let mut h = FlightHealth {
            enabled: self.cfg.flight.is_some(),
            incidents_dumped: self.incidents_dumped,
            last_trigger: self.last_trigger,
            ..FlightHealth::default()
        };
        for t in &self.tenants {
            if let Some(rec) = &t.flight {
                h.frames_recorded += rec.recorded();
                h.frames_dropped += rec.dropped();
            }
        }
        h
    }

    /// A live observability snapshot: the Prometheus text page
    /// (fleet counters plus per-tenant series with escaped labels) and
    /// the same content as structured JSON. Pure read — serving is
    /// untouched. Benches write this alongside every `BENCH_*.json`.
    pub fn exposition(&self) -> FleetExposition {
        let health = self.flight_health();
        let mut reg = MetricsRegistry::new();
        reg.add("fleet.steps", self.step);
        reg.add("fleet.tenants", self.tenants.len() as u64);
        reg.add("fleet.flight.frames_recorded", health.frames_recorded);
        reg.add("fleet.flight.frames_dropped", health.frames_dropped);
        reg.add("fleet.flight.incidents_dumped", health.incidents_dumped);
        reg.set_gauge(
            "fleet.flight.enabled",
            if health.enabled { 1.0 } else { 0.0 },
        );
        let mut prom = reg.to_prometheus();
        let mut tenants_json = Vec::new();
        prom.push_str("# TYPE fleet_tenant_steps counter\n");
        for t in self.tenants.iter() {
            use std::fmt::Write as _;
            let label = escape_label_value(&t.name);
            let _ = writeln!(
                prom,
                "fleet_tenant_steps{{tenant=\"{label}\"}} {}",
                t.stats.steps
            );
            let _ = writeln!(
                prom,
                "fleet_tenant_panics{{tenant=\"{label}\"}} {}",
                t.stats.panics
            );
            let _ = writeln!(
                prom,
                "fleet_tenant_quarantines{{tenant=\"{label}\"}} {}",
                t.stats.quarantines
            );
            let _ = writeln!(
                prom,
                "fleet_tenant_standby_steps{{tenant=\"{label}\"}} {}",
                t.stats.standby_steps
            );
            let _ = writeln!(
                prom,
                "fleet_tenant_shed_steps{{tenant=\"{label}\"}} {}",
                t.stats.shed_steps
            );
            let _ = writeln!(
                prom,
                "fleet_tenant_state{{tenant=\"{label}\"}} {}",
                t.supervisor.state().index()
            );
            let (rec, drop) = t
                .flight
                .as_ref()
                .map_or((0, 0), |r| (r.recorded(), r.dropped()));
            tenants_json.push(Json::obj([
                ("name", Json::str(&t.name)),
                ("state", Json::num(t.supervisor.state().index() as f64)),
                ("steps", Json::num(t.stats.steps as f64)),
                ("panics", Json::num(t.stats.panics as f64)),
                ("quarantines", Json::num(t.stats.quarantines as f64)),
                ("standby_steps", Json::num(t.stats.standby_steps as f64)),
                ("brownout_steps", Json::num(t.stats.brownout_steps as f64)),
                ("shed_steps", Json::num(t.stats.shed_steps as f64)),
                ("flight_recorded", Json::num(rec as f64)),
                ("flight_dropped", Json::num(drop as f64)),
            ]));
        }
        let last = match health.last_trigger {
            Some((t, tr, s)) => Json::obj([
                ("tenant", Json::num(t as f64)),
                ("trigger", Json::str(tr.as_str())),
                ("step", Json::num(s as f64)),
            ]),
            None => Json::Null,
        };
        let summary = Json::obj([
            ("steps", Json::num(self.step as f64)),
            ("tenants", Json::Arr(tenants_json)),
            (
                "flight",
                Json::obj([
                    ("enabled", Json::Bool(health.enabled)),
                    ("frames_recorded", Json::num(health.frames_recorded as f64)),
                    ("frames_dropped", Json::num(health.frames_dropped as f64)),
                    (
                        "incidents_dumped",
                        Json::num(health.incidents_dumped as f64),
                    ),
                    ("last_trigger", last),
                ]),
            ),
        ]);
        FleetExposition {
            prometheus: prom,
            summary,
        }
    }

    /// An automatic (trigger-driven) dump: applies the per-tenant
    /// cooldown, then dumps and books the `IncidentDumped` event.
    fn auto_dump(
        &mut self,
        idx: usize,
        trigger: FlightTrigger,
        step: u64,
        events: &mut Vec<(usize, FleetEventKind)>,
    ) {
        let Some(fc) = self.cfg.flight else { return };
        if let Some(last) = self.tenants[idx].last_dump_step {
            if step.saturating_sub(last) < fc.cooldown {
                return;
            }
        }
        if self.dump(idx, trigger, step).is_some() {
            events.push((idx, FleetEventKind::IncidentDumped));
        }
    }

    /// Dumps tenant `idx`'s ring as an incident: held in memory
    /// (bounded), written to the incident directory when one is set
    /// (write failures are reported on stderr, never fatal).
    fn dump(&mut self, idx: usize, trigger: FlightTrigger, step: u64) -> Option<Incident> {
        let tenant = &mut self.tenants[idx];
        let rec = tenant.flight.as_ref()?;
        let incident = Incident {
            tenant: idx,
            tenant_name: tenant.name.clone(),
            trigger,
            step,
            replay: self.replay_context.clone(),
            frames: rec.frames(),
        };
        tenant.last_dump_step = Some(step);
        self.incidents_dumped += 1;
        self.last_trigger = Some((idx, trigger, step));
        if let Some(dir) = &self.incident_dir {
            let path = dir.join(format!(
                "incident-t{idx}-step{step}-{}.jsonl",
                trigger.as_str()
            ));
            match write_incident(&path, &incident) {
                Ok(()) => self.incident_paths.push(path),
                Err(e) => eprintln!("tsc-serve: incident dump failed at {}: {e}", path.display()),
            }
        }
        if self.incidents.len() >= MAX_HELD_INCIDENTS {
            self.incidents.remove(0);
        }
        self.incidents.push(incident.clone());
        Some(incident)
    }

    /// Writes the step's lifecycle events to the attached sink, if
    /// any. Out-of-band by construction: called after all supervision
    /// decisions are made.
    fn emit(&mut self, step: u64, events: &[(usize, FleetEventKind)]) {
        let Some(sink) = self.obs_sink.as_mut() else {
            return;
        };
        for &(idx, kind) in events {
            let record = fleet_event(step, idx, &self.tenants[idx].name, kind);
            if let Err(e) = sink.emit(&record) {
                eprintln!(
                    "tsc-obs: fleet event logging disabled after write failure on {}: {e}",
                    sink.path().display()
                );
                self.obs_sink = None;
                return;
            }
        }
    }
}
