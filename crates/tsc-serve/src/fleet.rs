//! The multi-tenant serving fleet: N independent [`ServeRuntime`]s
//! under per-tenant supervision, with crash isolation, circuit
//! breakers, deterministic recovery, and infrastructure chaos.
//!
//! ## Isolation model
//!
//! Each tenant owns its grid, its policy runtime, its warm-standby
//! [`MaxPressureController`], and its [`Supervisor`] — there is **no
//! shared mutable state between tenants**, so any tenant's failure is
//! invisible in every other tenant's output (pinned bit-for-bit by a
//! tier-1 test). A tenant's policy step runs under
//! [`catch_unwind`](std::panic::catch_unwind): a panic never takes the
//! process down; the panicking tenant answers with its standby's
//! MaxPressure actions for that step and is quarantined.
//!
//! The fleet keeps its own standby *outside* the [`ServeRuntime`]
//! (which has an internal fallback of its own) because after a panic
//! the runtime's in-memory state is untrusted and after a reload the
//! runtime is rebuilt from scratch — the fleet-level standby's
//! min-hold counters stay continuous across both, so degraded service
//! never cold-resets mid-episode.
//!
//! ## Supervision loop
//!
//! Per tenant and step (see [`Supervisor`] for the state machine):
//! Healthy/Recovering tenants serve their policy and feed the breaker
//! window with step outcomes (typed errors and deadline overruns are
//! soft faults); Degraded tenants serve standby until their
//! deterministic backoff expires, then re-try the policy on probation;
//! Quarantined tenants serve standby and periodically reload their
//! last good checkpoint under a bounded retry budget — with the budget
//! exhausted they stay quarantined quietly forever (no hot-looping).
//!
//! ## Determinism
//!
//! With the default [`FleetClock::Steps`] clock there is **zero
//! wall-clock dependence**: backoff, retries, and every
//! [`InfraChaosPlan`] decision are functions of the fleet step index
//! and pure hashes. An empty plan is bit-identical to no plan, and the
//! same seed + plan replays bit-for-bit ([`FleetStep::digest`] pins
//! whole runs).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

use pairuplight::{Checkpoint, PolicySnapshot, TrainError};
use tsc_baselines::MaxPressureController;
use tsc_obs::{fleet_event, EventSink, FleetEventKind, Histogram};
use tsc_sim::{Controller, IntersectionObs};

use crate::engine::{DegradeReason, ServeConfig, ServeRuntime};
use crate::error::ServeError;
use crate::infra_chaos::{InfraChaosPlan, TenantSel};
use crate::supervisor::{Supervisor, SupervisorConfig, TenantState};
use crate::telemetry::ServeTelemetry;

/// What drives the fleet's supervision timers (backoff, retry
/// schedules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetClock {
    /// One tick per fleet step — fully virtual, bit-reproducible, the
    /// default (and the only mode the determinism pins run under).
    #[default]
    Steps,
    /// Milliseconds of wall time since the fleet was built — for
    /// production loops whose step cadence is externally paced.
    Wall,
}

/// Fleet-wide configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetConfig {
    /// Supervision knobs applied to every tenant.
    pub supervisor: SupervisorConfig,
    /// Timer source for backoff/retry scheduling.
    pub clock: FleetClock,
    /// Seed keying infra-chaos draws and per-tenant backoff jitter.
    pub seed: u64,
}

/// Everything needed to host one tenant.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Operator-facing tenant name (events, reports).
    pub name: String,
    /// The deployed policy.
    pub snapshot: PolicySnapshot,
    /// Serving knobs for this tenant's runtime.
    pub serve_cfg: ServeConfig,
    /// Last good checkpoint on disk — the quarantine-recovery source
    /// (and the reload-storm target). `None` recovers from the
    /// in-memory last good snapshot instead.
    pub checkpoint: Option<PathBuf>,
}

/// Who produced a tenant's actions this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// The tenant's policy runtime (possibly with its own internal
    /// per-agent fallbacks — see the tenant's [`ServeTelemetry`]).
    Policy,
    /// The fleet-level warm-standby MaxPressure controller.
    Standby,
}

/// One tenant's slice of a [`FleetStep`].
#[derive(Debug, Clone)]
pub struct TenantStep {
    /// Chosen phase per intersection of this tenant's grid.
    pub actions: Vec<usize>,
    /// Supervisor state *after* this step.
    pub state: TenantState,
    /// Which controller answered.
    pub served_by: ServedBy,
    /// Whether the tenant's policy step panicked this step (caught and
    /// isolated; `actions` are the standby's).
    pub panicked: bool,
}

/// The outcome of one fleet step: every tenant answered, every step,
/// no matter what failed.
#[derive(Debug, Clone)]
pub struct FleetStep {
    /// Per-tenant outcomes, in tenant order.
    pub tenants: Vec<TenantStep>,
}

impl FleetStep {
    /// FNV-1a digest over every tenant's actions, state, and serving
    /// source — fold the per-step digests to pin a whole run
    /// bit-for-bit.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u64| {
            h ^= byte;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for t in &self.tenants {
            mix(t.state.index() as u64);
            mix(matches!(t.served_by, ServedBy::Policy) as u64);
            mix(t.panicked as u64);
            mix(t.actions.len() as u64);
            for &a in &t.actions {
                mix(a as u64);
            }
        }
        h
    }
}

/// Fleet-level counters for one tenant (the supervision story the
/// per-runtime [`ServeTelemetry`] cannot see: panics, breaker cycles,
/// quarantines, reload attempts, recovery latency).
#[derive(Debug, Clone, Default)]
pub struct TenantStats {
    /// Fleet steps this tenant has been served for.
    pub steps: u64,
    /// Steps answered by the fleet-level standby.
    pub standby_steps: u64,
    /// Caught policy panics.
    pub panics: u64,
    /// Policy soft faults (typed errors + deadline overruns).
    pub soft_faults: u64,
    /// Circuit-breaker openings.
    pub breaker_trips: u64,
    /// Breaker closings (probation passed).
    pub breaker_closes: u64,
    /// Quarantine entries.
    pub quarantines: u64,
    /// Full quarantine → Healthy recovery cycles.
    pub recoveries: u64,
    /// Checkpoint reload attempts while quarantined.
    pub reload_attempts: u64,
    /// Failed reload attempts (corrupt checkpoint, injected fault).
    pub reload_failures: u64,
    /// Clock ticks spent from each quarantine entry to the completed
    /// recovery, summed (divide by [`recoveries`](Self::recoveries)
    /// for the mean recovery latency).
    pub recovery_ticks_total: u64,
    /// Steps spent in each supervisor state, indexed by
    /// [`TenantState::index`].
    pub state_steps: [u64; TenantState::COUNT],
}

/// One hosted tenant: runtime + standby + supervisor + recovery
/// sources.
#[derive(Debug)]
struct Tenant {
    name: String,
    runtime: ServeRuntime,
    standby: MaxPressureController,
    supervisor: Supervisor,
    /// The snapshot recovery falls back to when no on-disk checkpoint
    /// is configured; refreshed on every successful reload.
    last_good: PolicySnapshot,
    serve_cfg: ServeConfig,
    checkpoint: Option<PathBuf>,
    /// Telemetry of runtimes retired by reloads, folded together so
    /// [`FleetRuntime::tenant_telemetry`] spans the tenant's whole
    /// life ([`ServeTelemetry::merge`] is load-bearing here).
    archive: ServeTelemetry,
    /// Clock tick of the current quarantine entry (recovery latency).
    quarantined_since: Option<u64>,
    stats: TenantStats,
    /// Wall time of each full tenant step (supervision included).
    step_latency: Histogram,
}

/// A supervised multi-tenant serving fleet. See the module docs for
/// the isolation and supervision model.
#[derive(Debug)]
pub struct FleetRuntime {
    cfg: FleetConfig,
    tenants: Vec<Tenant>,
    plan: InfraChaosPlan,
    /// Fleet steps served so far (the `Steps` clock and the chaos
    /// plan's time base).
    step: u64,
    epoch: Instant,
    obs_sink: Option<EventSink>,
}

impl FleetRuntime {
    /// Builds a fleet hosting `specs`, all tenants Healthy, no infra
    /// chaos installed.
    pub fn new(cfg: FleetConfig, specs: Vec<TenantSpec>) -> Self {
        let tenants = specs
            .into_iter()
            .enumerate()
            .map(|(idx, spec)| {
                // Same salt scheme as the chaos engine: decorrelate
                // each tenant's jitter stream from the shared seed.
                let salt = tsc_sim::chaos::fault_salt(cfg.seed ^ 0x000F_1EE7, idx);
                Tenant {
                    standby: MaxPressureController::new(spec.serve_cfg.fallback_min_hold.max(1)),
                    runtime: ServeRuntime::new(spec.snapshot.clone(), spec.serve_cfg),
                    supervisor: Supervisor::new(cfg.supervisor, salt),
                    archive: ServeTelemetry::new(spec.snapshot.num_agents()),
                    last_good: spec.snapshot,
                    serve_cfg: spec.serve_cfg,
                    checkpoint: spec.checkpoint,
                    name: spec.name,
                    quarantined_since: None,
                    stats: TenantStats::default(),
                    step_latency: Histogram::new(),
                }
            })
            .collect();
        FleetRuntime {
            cfg,
            tenants,
            plan: InfraChaosPlan::new(),
            step: 0,
            epoch: Instant::now(),
            obs_sink: None,
        }
    }

    /// Number of hosted tenants.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Tenant names, in tenant order.
    pub fn names(&self) -> Vec<&str> {
        self.tenants.iter().map(|t| t.name.as_str()).collect()
    }

    /// Fleet steps served so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// The supervisor state of tenant `t`.
    pub fn tenant_state(&self, t: usize) -> TenantState {
        self.tenants[t].supervisor.state()
    }

    /// Fleet-level counters for tenant `t`.
    pub fn tenant_stats(&self, t: usize) -> &TenantStats {
        &self.tenants[t].stats
    }

    /// Wall-time histogram of tenant `t`'s full fleet steps
    /// (supervision + whichever controller served).
    pub fn tenant_step_latency(&self, t: usize) -> &Histogram {
        &self.tenants[t].step_latency
    }

    /// Serving telemetry of tenant `t` across its whole life: the
    /// live runtime's telemetry merged with every runtime retired by a
    /// recovery reload.
    pub fn tenant_telemetry(&self, t: usize) -> ServeTelemetry {
        let tenant = &self.tenants[t];
        let mut out = tenant.archive.clone();
        out.merge(tenant.runtime.telemetry());
        out
    }

    /// Installs an infrastructure chaos plan (replacing any previous
    /// one). An empty plan leaves the fleet bit-identical to one that
    /// never had a plan installed.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidInfraChaos`] when a fault targets a tenant
    /// index outside the fleet.
    pub fn set_infra_chaos(&mut self, plan: InfraChaosPlan) -> Result<(), ServeError> {
        let n = self.tenants.len();
        for fault in plan.faults() {
            if let TenantSel::One(t) = fault.tenants {
                if t >= n {
                    return Err(ServeError::InvalidInfraChaos {
                        tenant: t,
                        tenants: n,
                    });
                }
            }
        }
        self.plan = plan;
        Ok(())
    }

    /// Attaches a JSONL sink for fleet lifecycle events (breaker
    /// open/close, quarantine enter/exit, recovery outcomes).
    /// Out-of-band: fleet behavior is unchanged; the sink is dropped
    /// with a stderr warning on the first write failure.
    pub fn attach_obs(&mut self, sink: EventSink) {
        self.obs_sink = Some(sink);
    }

    /// Detaches the event sink, returning it. `None` when none was
    /// attached.
    pub fn detach_obs(&mut self) -> Option<EventSink> {
        self.obs_sink.take()
    }

    /// Current supervision clock tick.
    fn now(&self) -> u64 {
        match self.cfg.clock {
            FleetClock::Steps => self.step,
            FleetClock::Wall => u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX),
        }
    }

    /// Serves one decision step for every tenant. `obs[t]` is tenant
    /// `t`'s joint observation. Always returns actions for every
    /// tenant — panics are caught, faults are absorbed by the
    /// fallback ladder.
    ///
    /// # Errors
    ///
    /// [`ServeError::TenantCountMismatch`] when `obs` does not match
    /// the fleet's tenant count. (Per-tenant failures never surface
    /// here — they degrade that tenant only.)
    pub fn step(&mut self, obs: &[&[IntersectionObs]]) -> Result<FleetStep, ServeError> {
        if obs.len() != self.tenants.len() {
            return Err(ServeError::TenantCountMismatch {
                got: obs.len(),
                expected: self.tenants.len(),
            });
        }
        let step = self.step;
        let now = self.now();
        let seed = self.cfg.seed;
        let mut events: Vec<(usize, FleetEventKind)> = Vec::new();
        let mut out = Vec::with_capacity(self.tenants.len());
        for (idx, tenant) in self.tenants.iter_mut().enumerate() {
            let t0 = Instant::now();
            let step_out = Self::step_tenant(
                tenant,
                idx,
                obs[idx],
                &self.plan,
                seed,
                step,
                now,
                &mut events,
            );
            tenant.step_latency.record(t0.elapsed());
            tenant.stats.steps += 1;
            tenant.stats.state_steps[step_out.state.index()] += 1;
            if matches!(step_out.served_by, ServedBy::Standby) {
                tenant.stats.standby_steps += 1;
            }
            out.push(step_out);
        }
        self.step += 1;
        self.emit(step, &events);
        Ok(FleetStep { tenants: out })
    }

    /// One tenant's slice of a fleet step: chaos injection, state
    /// dispatch, crash isolation, supervision bookkeeping.
    #[allow(clippy::too_many_arguments)]
    fn step_tenant(
        tenant: &mut Tenant,
        idx: usize,
        obs: &[IntersectionObs],
        plan: &InfraChaosPlan,
        seed: u64,
        step: u64,
        now: u64,
        events: &mut Vec<(usize, FleetEventKind)>,
    ) -> TenantStep {
        // Warm standby first: its min-hold counters must advance every
        // step regardless of who answers, so a degraded step continues
        // the plan instead of cold-resetting it.
        let fb_actions = tenant.standby.decide(obs);
        // Latency spikes are injected unconditionally (None clears):
        // the code path is identical with and without a plan, which is
        // what makes the empty plan bit-identical to no plan.
        tenant.runtime.inject_delay(plan.spike(seed, step, idx));
        // Reload storm: commit last step's staged reload, then stage
        // the next one. Only meaningful for policy-serving tenants
        // with an on-disk checkpoint.
        if tenant.supervisor.state().serves_policy() {
            if tenant.runtime.reload_in_flight() {
                let _ = tenant.runtime.commit_reload();
            }
            if plan.storm_due(step, idx) {
                if let Some(path) = &tenant.checkpoint {
                    let _ = tenant.runtime.begin_reload(path);
                }
            }
        }

        match tenant.supervisor.state() {
            TenantState::Quarantined => {
                if tenant.supervisor.retry_due(now) {
                    Self::attempt_reload(tenant, idx, plan, seed, step, now, events);
                }
                TenantStep {
                    actions: fb_actions,
                    state: tenant.supervisor.state(),
                    served_by: ServedBy::Standby,
                    panicked: false,
                }
            }
            TenantState::Degraded => {
                if tenant.supervisor.retry_due(now) {
                    tenant.supervisor.begin_trial();
                    Self::policy_step(tenant, idx, obs, fb_actions, plan, seed, step, now, events)
                } else {
                    TenantStep {
                        actions: fb_actions,
                        state: TenantState::Degraded,
                        served_by: ServedBy::Standby,
                        panicked: false,
                    }
                }
            }
            TenantState::Healthy | TenantState::Recovering => {
                Self::policy_step(tenant, idx, obs, fb_actions, plan, seed, step, now, events)
            }
        }
    }

    /// Runs the tenant's policy under crash isolation and feeds the
    /// breaker with the outcome.
    #[allow(clippy::too_many_arguments)]
    fn policy_step(
        tenant: &mut Tenant,
        idx: usize,
        obs: &[IntersectionObs],
        fb_actions: Vec<usize>,
        plan: &InfraChaosPlan,
        seed: u64,
        step: u64,
        now: u64,
        events: &mut Vec<(usize, FleetEventKind)>,
    ) -> TenantStep {
        let was = tenant.supervisor.state();
        let inject_panic = plan.panics(seed, step, idx);
        let runtime = &mut tenant.runtime;
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected tenant panic (infra chaos)");
            }
            runtime.serve_step(obs)
        }));
        match result {
            Ok(Ok(served)) => {
                // Deadline overruns are the tenant's soft faults; the
                // runtime's own health/reload degradations are already
                // the fallback ladder doing its job, not breaker food.
                let fault = served
                    .causes
                    .iter()
                    .any(|c| matches!(c, Some(DegradeReason::DeadlineOverrun)));
                if fault {
                    tenant.stats.soft_faults += 1;
                }
                if let Some(state) = tenant.supervisor.record_step(fault, now) {
                    Self::note_transition(tenant, idx, was, state, now, events);
                }
                let state = tenant.supervisor.state();
                // A trip this very step keeps the policy's actions: the
                // forward already ran and answered; standby takes over
                // from the next step.
                TenantStep {
                    actions: served.actions,
                    state,
                    served_by: ServedBy::Policy,
                    panicked: false,
                }
            }
            Ok(Err(_)) => {
                // Typed serve error (e.g. wired to the wrong grid):
                // the standby answers, the breaker counts a fault.
                tenant.stats.soft_faults += 1;
                if let Some(state) = tenant.supervisor.record_step(true, now) {
                    Self::note_transition(tenant, idx, was, state, now, events);
                }
                TenantStep {
                    actions: fb_actions,
                    state: tenant.supervisor.state(),
                    served_by: ServedBy::Standby,
                    panicked: false,
                }
            }
            Err(_) => {
                tenant.stats.panics += 1;
                let state = tenant.supervisor.record_panic(now);
                Self::note_transition(tenant, idx, was, state, now, events);
                TenantStep {
                    actions: fb_actions,
                    state,
                    served_by: ServedBy::Standby,
                    panicked: true,
                }
            }
        }
    }

    /// One quarantine-recovery reload attempt: load the last good
    /// checkpoint (or clone the in-memory snapshot), rebuild the
    /// runtime, and report the outcome to the supervisor.
    #[allow(clippy::too_many_arguments)]
    fn attempt_reload(
        tenant: &mut Tenant,
        idx: usize,
        plan: &InfraChaosPlan,
        seed: u64,
        step: u64,
        now: u64,
        events: &mut Vec<(usize, FleetEventKind)>,
    ) {
        tenant.stats.reload_attempts += 1;
        let loaded: Result<PolicySnapshot, ServeError> = if plan.corrupts_reload(seed, step, idx) {
            Err(ServeError::Load(TrainError::Load(
                tsc_nn::LoadError::Format("injected reload corruption (infra chaos)".into()),
            )))
        } else if let Some(path) = &tenant.checkpoint {
            Checkpoint::read(path)
                .map_err(TrainError::from)
                .map_err(ServeError::from)
                .and_then(|ck| {
                    tenant
                        .last_good
                        .with_checkpoint(&ck)
                        .map_err(ServeError::from)
                })
        } else {
            Ok(tenant.last_good.clone())
        };
        match loaded {
            Ok(snapshot) => {
                // Retire the untrusted runtime, preserving its
                // telemetry, and start the replacement clean.
                tenant.archive.merge(tenant.runtime.telemetry());
                tenant.runtime = ServeRuntime::new(snapshot.clone(), tenant.serve_cfg);
                tenant.last_good = snapshot;
                let state = tenant.supervisor.reload_result(true, now);
                Self::note_transition(tenant, idx, TenantState::Quarantined, state, now, events);
            }
            Err(_) => {
                tenant.stats.reload_failures += 1;
                tenant.supervisor.reload_result(false, now);
                events.push((idx, FleetEventKind::RecoveryFailed));
            }
        }
    }

    /// Books a supervisor transition into stats + events. `now` feeds
    /// recovery-latency accounting.
    fn note_transition(
        tenant: &mut Tenant,
        idx: usize,
        from: TenantState,
        to: TenantState,
        now: u64,
        events: &mut Vec<(usize, FleetEventKind)>,
    ) {
        match to {
            TenantState::Degraded => {
                tenant.stats.breaker_trips += 1;
                events.push((idx, FleetEventKind::BreakerOpen));
            }
            TenantState::Quarantined => {
                tenant.stats.quarantines += 1;
                if tenant.quarantined_since.is_none() {
                    tenant.quarantined_since = Some(now);
                }
                events.push((idx, FleetEventKind::QuarantineEnter));
            }
            TenantState::Recovering => {
                if from == TenantState::Quarantined {
                    events.push((idx, FleetEventKind::QuarantineExit));
                }
            }
            TenantState::Healthy => {
                tenant.stats.breaker_closes += 1;
                events.push((idx, FleetEventKind::BreakerClose));
                if let Some(since) = tenant.quarantined_since.take() {
                    tenant.stats.recoveries += 1;
                    tenant.stats.recovery_ticks_total += now.saturating_sub(since);
                    events.push((idx, FleetEventKind::RecoveryOk));
                }
            }
        }
    }

    /// Writes the step's lifecycle events to the attached sink, if
    /// any. Out-of-band by construction: called after all supervision
    /// decisions are made.
    fn emit(&mut self, step: u64, events: &[(usize, FleetEventKind)]) {
        let Some(sink) = self.obs_sink.as_mut() else {
            return;
        };
        for &(idx, kind) in events {
            let record = fleet_event(step, idx, &self.tenants[idx].name, kind);
            if let Err(e) = sink.emit(&record) {
                eprintln!(
                    "tsc-obs: fleet event logging disabled after write failure on {}: {e}",
                    sink.path().display()
                );
                self.obs_sink = None;
                return;
            }
        }
    }
}
