//! Per-tenant supervision: a four-state health machine with a
//! windowed circuit breaker and deterministic exponential backoff.
//!
//! Every tenant of a [`FleetRuntime`](crate::FleetRuntime) is watched
//! by one [`Supervisor`]. The machine has four states:
//!
//! * **Healthy** — the policy serves; step outcomes feed the breaker
//!   window.
//! * **Degraded** — the breaker is open (windowed soft-fault rate
//!   crossed the threshold): the warm-standby MaxPressure controller
//!   serves while the tenant waits out a backoff, then re-tries the
//!   policy on probation.
//! * **Quarantined** — the tenant panicked (or kept failing while
//!   recovering): its runtime is untrusted, the standby serves, and
//!   the fleet periodically reloads the last good checkpoint under a
//!   bounded retry budget. With the budget exhausted the tenant stays
//!   quarantined — it never hot-loops on a permanently-corrupt
//!   checkpoint.
//! * **Recovering** — the policy serves again on probation; a clean
//!   streak of [`SupervisorConfig::probation_steps`] closes the
//!   breaker, any fault re-opens it (or re-quarantines on panic).
//!
//! Supervision composes with SLA-aware admission
//! ([`crate::Admission`]) by outranking it: the supervisor's recovery
//! schedule runs regardless of the tenant's brownout level, while a
//! browned-out step — where the policy never ran — neither feeds the
//! breaker window nor consumes a Degraded tenant's retry trial (a
//! trial begun on a step the policy cannot serve would be an
//! automatic, meaningless fault).
//!
//! All transitions go through one **pure** function,
//! [`Supervisor::transition`], so the whole `(state, event)` matrix is
//! exhaustively unit-testable. All timing is expressed in ticks of the
//! fleet's pluggable clock ([`FleetClock`](crate::FleetClock)); with
//! the default step-counting clock the machine has **zero wall-clock
//! dependence**. Backoff jitter is a splitmix64 hash of
//! `(tenant salt, attempt)` — bit-reproducible, no RNG state consumed,
//! the same discipline as [`tsc_sim::chaos`].

/// Supervision knobs shared by every tenant of a fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Breaker window length in policy-served steps.
    pub window: usize,
    /// Open the breaker when the windowed soft-fault rate reaches this
    /// threshold (errors + deadline overruns over window steps).
    pub trip_fault_rate: f64,
    /// Minimum outcomes in the window before the breaker may trip.
    pub min_samples: usize,
    /// Base backoff in clock ticks; attempt `k` waits
    /// `min(base << k, max) + jitter` with `jitter < base`.
    pub backoff_base: u64,
    /// Backoff cap in clock ticks (pre-jitter).
    pub backoff_max: u64,
    /// Checkpoint reloads a quarantined tenant may attempt before it
    /// is left quarantined for good.
    pub retry_budget: u32,
    /// Clean policy steps required to leave Recovering for Healthy.
    pub probation_steps: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            window: 20,
            trip_fault_rate: 0.5,
            min_samples: 5,
            backoff_base: 4,
            backoff_max: 64,
            retry_budget: 3,
            probation_steps: 5,
        }
    }
}

impl SupervisorConfig {
    /// The config as a JSON object (incident replay context).
    pub fn to_json(&self) -> tsc_obs::Json {
        use tsc_obs::Json;
        Json::obj([
            ("window", Json::num(self.window as f64)),
            ("trip_fault_rate", Json::num(self.trip_fault_rate)),
            ("min_samples", Json::num(self.min_samples as f64)),
            ("backoff_base", Json::num(self.backoff_base as f64)),
            ("backoff_max", Json::num(self.backoff_max as f64)),
            ("retry_budget", Json::num(f64::from(self.retry_budget))),
            (
                "probation_steps",
                Json::num(f64::from(self.probation_steps)),
            ),
        ])
    }

    /// Parses [`to_json`](Self::to_json) output.
    pub fn from_json(j: &tsc_obs::Json) -> Option<SupervisorConfig> {
        Some(SupervisorConfig {
            window: j.get_num("window")? as usize,
            trip_fault_rate: j.get_num("trip_fault_rate")?,
            min_samples: j.get_num("min_samples")? as usize,
            backoff_base: j.get_num("backoff_base")? as u64,
            backoff_max: j.get_num("backoff_max")? as u64,
            retry_budget: j.get_num("retry_budget")? as u32,
            probation_steps: j.get_num("probation_steps")? as u32,
        })
    }
}

/// Health state of one supervised tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantState {
    /// Policy serving, breaker closed.
    Healthy,
    /// Breaker open: standby serving, waiting out backoff.
    Degraded,
    /// Crashed or unrecoverable: standby serving, reload scheduled
    /// (until the retry budget runs out).
    Quarantined,
    /// Policy serving on probation after a trial or reload.
    Recovering,
}

impl TenantState {
    /// Number of states (telemetry array size).
    pub const COUNT: usize = 4;
    /// Every state, in [`index`](Self::index) order.
    pub const ALL: [TenantState; TenantState::COUNT] = [
        TenantState::Healthy,
        TenantState::Degraded,
        TenantState::Quarantined,
        TenantState::Recovering,
    ];

    /// Stable dense index.
    pub fn index(self) -> usize {
        match self {
            TenantState::Healthy => 0,
            TenantState::Degraded => 1,
            TenantState::Quarantined => 2,
            TenantState::Recovering => 3,
        }
    }

    /// Whether the policy answers in this state (otherwise the warm
    /// standby does).
    pub fn serves_policy(self) -> bool {
        matches!(self, TenantState::Healthy | TenantState::Recovering)
    }
}

/// Everything that can happen to a supervised tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantEvent {
    /// A policy step completed cleanly.
    StepOk,
    /// A policy step soft-faulted: typed serve error or deadline
    /// overrun (counted by the breaker, served by the fallback ladder).
    SoftFault,
    /// The tenant's step panicked — its in-memory state is untrusted.
    Panic,
    /// The windowed soft-fault rate crossed the trip threshold.
    BreakerTripped,
    /// The backoff expired: a degraded tenant may re-try the policy.
    BackoffElapsed,
    /// A checkpoint reload validated and swapped in.
    ReloadOk,
    /// A checkpoint reload failed (corrupt file, fingerprint or layout
    /// mismatch, injected corruption).
    ReloadFailed,
    /// The probation streak completed cleanly.
    ProbationPassed,
}

impl TenantEvent {
    /// Number of events (for exhaustive transition tests).
    pub const COUNT: usize = 8;
    /// Every event.
    pub const ALL: [TenantEvent; TenantEvent::COUNT] = [
        TenantEvent::StepOk,
        TenantEvent::SoftFault,
        TenantEvent::Panic,
        TenantEvent::BreakerTripped,
        TenantEvent::BackoffElapsed,
        TenantEvent::ReloadOk,
        TenantEvent::ReloadFailed,
        TenantEvent::ProbationPassed,
    ];
}

/// splitmix64 — the workspace's standard stateless hash (same scheme
/// as [`tsc_sim::chaos::chaos_uniform`]).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One tenant's supervisor: the state machine plus its breaker window
/// and backoff timers. Purely tick-driven — no wall clock anywhere.
#[derive(Debug, Clone)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    /// Jitter salt, derived from `(fleet seed, tenant index)`.
    salt: u64,
    state: TenantState,
    /// Breaker ring buffer over recent policy steps (`true` = fault).
    window: Vec<bool>,
    window_next: usize,
    window_len: usize,
    /// Consecutive failed recovery attempts (backoff exponent).
    attempt: u32,
    reloads_used: u32,
    /// Clock tick at which the current backoff expires.
    wait_until: Option<u64>,
    probation_left: u32,
}

impl Supervisor {
    /// A healthy supervisor for one tenant. `salt` decorrelates this
    /// tenant's backoff jitter from every other tenant's.
    pub fn new(cfg: SupervisorConfig, salt: u64) -> Self {
        Supervisor {
            window: vec![false; cfg.window.max(1)],
            cfg,
            salt,
            state: TenantState::Healthy,
            window_next: 0,
            window_len: 0,
            attempt: 0,
            reloads_used: 0,
            wait_until: None,
            probation_left: 0,
        }
    }

    /// The pure transition table — the single source of truth for the
    /// state machine. Events that make no sense in a state leave it
    /// unchanged (e.g. `ReloadOk` while Healthy).
    pub fn transition(state: TenantState, event: TenantEvent) -> TenantState {
        use TenantEvent::*;
        use TenantState::*;
        match (state, event) {
            // A panic always quarantines a tenant that is running its
            // policy (or waiting to); a quarantined tenant's policy
            // never runs, so a panic there cannot occur — identity.
            (Healthy | Degraded | Recovering, Panic) => Quarantined,
            (Healthy | Recovering, BreakerTripped) => Degraded,
            (Degraded, BackoffElapsed) => Recovering,
            (Quarantined, ReloadOk) => Recovering,
            (Recovering, SoftFault) => Degraded,
            (Recovering, ProbationPassed) => Healthy,
            _ => state,
        }
    }

    /// Current state.
    pub fn state(&self) -> TenantState {
        self.state
    }

    /// Failed recovery attempts so far (the backoff exponent).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Checkpoint reloads consumed from the retry budget.
    pub fn reloads_used(&self) -> u32 {
        self.reloads_used
    }

    /// Whether the reload budget is spent — a quarantined tenant with
    /// an exhausted budget is never retried again.
    pub fn exhausted(&self) -> bool {
        self.reloads_used >= self.cfg.retry_budget
    }

    /// Deterministic backoff for recovery attempt `attempt`:
    /// `min(base << attempt, max)` plus a hash jitter below `base`.
    /// Bit-reproducible for a given `(salt, attempt)`.
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        let base = self.cfg.backoff_base.max(1);
        let exp = base
            .saturating_shl(attempt.min(32))
            .min(self.cfg.backoff_max.max(base));
        let jitter = splitmix64(self.salt ^ (u64::from(attempt) << 17)) % base;
        exp + jitter
    }

    fn arm_backoff(&mut self, now: u64) {
        self.wait_until = Some(now + self.backoff_ticks(self.attempt));
        self.attempt += 1;
    }

    /// Whether a waiting tenant (Degraded or Quarantined) is due for
    /// its next recovery attempt at tick `now`. Quarantined tenants
    /// with an exhausted budget are never due.
    pub fn retry_due(&self, now: u64) -> bool {
        match self.state {
            TenantState::Degraded => matches!(self.wait_until, Some(t) if now >= t),
            TenantState::Quarantined => {
                !self.exhausted() && matches!(self.wait_until, Some(t) if now >= t)
            }
            _ => false,
        }
    }

    fn window_fault_rate(&self) -> Option<f64> {
        if self.window_len < self.cfg.min_samples.max(1) {
            return None;
        }
        let faults = self.window[..self.window_len]
            .iter()
            .filter(|&&f| f)
            .count();
        Some(faults as f64 / self.window_len as f64)
    }

    fn reset_window(&mut self) {
        self.window_len = 0;
        self.window_next = 0;
    }

    /// Records the outcome of a policy-served step (`fault` = typed
    /// error or deadline overrun) and runs the breaker. Returns the
    /// transition applied, if any. Only meaningful in policy-serving
    /// states; a stray call elsewhere is ignored.
    pub fn record_step(&mut self, fault: bool, now: u64) -> Option<TenantState> {
        if !self.state.serves_policy() {
            return None;
        }
        let before = self.state;
        self.window[self.window_next] = fault;
        self.window_next = (self.window_next + 1) % self.window.len();
        self.window_len = (self.window_len + 1).min(self.window.len());
        self.state = Self::transition(
            self.state,
            if fault {
                TenantEvent::SoftFault
            } else {
                TenantEvent::StepOk
            },
        );
        match self.state {
            TenantState::Degraded => {
                // Failed probation: re-open with a longer backoff.
                self.reset_window();
                self.arm_backoff(now);
            }
            TenantState::Recovering => {
                if !fault {
                    self.probation_left = self.probation_left.saturating_sub(1);
                    if self.probation_left == 0 {
                        self.state = Self::transition(self.state, TenantEvent::ProbationPassed);
                        self.attempt = 0;
                        self.wait_until = None;
                        self.reset_window();
                    }
                }
            }
            TenantState::Healthy => {
                if let Some(rate) = self.window_fault_rate() {
                    if rate >= self.cfg.trip_fault_rate {
                        self.state = Self::transition(self.state, TenantEvent::BreakerTripped);
                        self.reset_window();
                        self.arm_backoff(now);
                    }
                }
            }
            TenantState::Quarantined => unreachable!("no step outcome quarantines"),
        }
        (self.state != before).then_some(self.state)
    }

    /// Records a panic of the tenant's step: unconditional quarantine
    /// (from any policy-serving state) with backoff armed for the
    /// first reload attempt.
    pub fn record_panic(&mut self, now: u64) -> TenantState {
        self.state = Self::transition(self.state, TenantEvent::Panic);
        self.reset_window();
        self.probation_left = 0;
        self.arm_backoff(now);
        self.state
    }

    /// A degraded tenant's backoff expired: move to probation (the
    /// caller serves the policy this very step).
    pub fn begin_trial(&mut self) -> TenantState {
        debug_assert_eq!(self.state, TenantState::Degraded);
        self.state = Self::transition(self.state, TenantEvent::BackoffElapsed);
        self.probation_left = self.cfg.probation_steps.max(1);
        self.wait_until = None;
        self.reset_window();
        self.state
    }

    /// Accounts one checkpoint reload attempt of a quarantined tenant
    /// and applies its outcome. On failure the next attempt is armed
    /// with a longer backoff — unless the budget is now exhausted, in
    /// which case the tenant stays quarantined for good.
    pub fn reload_result(&mut self, ok: bool, now: u64) -> TenantState {
        debug_assert_eq!(self.state, TenantState::Quarantined);
        self.reloads_used += 1;
        if ok {
            self.state = Self::transition(self.state, TenantEvent::ReloadOk);
            self.probation_left = self.cfg.probation_steps.max(1);
            self.wait_until = None;
            self.reset_window();
        } else {
            self.state = Self::transition(self.state, TenantEvent::ReloadFailed);
            if self.exhausted() {
                self.wait_until = None;
            } else {
                self.arm_backoff(now);
            }
        }
        self.state
    }
}

/// `u64::checked_shl` that saturates instead of wrapping (shift counts
/// ≥ 64 or overflowing results pin to `u64::MAX`).
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        if rhs >= 64 {
            return u64::MAX;
        }
        let shifted = self << rhs;
        if shifted >> rhs == self {
            shifted
        } else {
            u64::MAX
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sup(cfg: SupervisorConfig) -> Supervisor {
        Supervisor::new(cfg, 0xF1EE7)
    }

    #[test]
    fn breaker_trips_on_windowed_fault_rate() {
        let mut s = sup(SupervisorConfig {
            window: 4,
            min_samples: 4,
            trip_fault_rate: 0.5,
            ..Default::default()
        });
        assert_eq!(s.record_step(true, 0), None, "below min samples");
        assert_eq!(s.record_step(false, 1), None);
        assert_eq!(s.record_step(true, 2), None);
        // 2 faults in the first 4 samples hits the 0.5 threshold.
        assert_eq!(s.record_step(false, 3), Some(TenantState::Degraded));
        assert!(!s.retry_due(3));
        let due_at = 3 + s.backoff_ticks(0);
        assert!(s.retry_due(due_at));
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let s = sup(SupervisorConfig {
            backoff_base: 4,
            backoff_max: 32,
            ..Default::default()
        });
        for attempt in 0..10 {
            let a = s.backoff_ticks(attempt);
            let b = s.backoff_ticks(attempt);
            assert_eq!(a, b, "bit-reproducible");
            let exp = (4u64 << attempt.min(32)).min(32);
            assert!(a >= exp && a < exp + 4, "jitter below base: {a} vs {exp}");
        }
        // Distinct salts decorrelate jitter streams.
        let other = Supervisor::new(SupervisorConfig::default(), 0xBEEF);
        assert_ne!(
            (0..8).map(|k| s.backoff_ticks(k)).collect::<Vec<_>>(),
            (0..8).map(|k| other.backoff_ticks(k)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn probation_closes_the_breaker_after_a_clean_streak() {
        let mut s = sup(SupervisorConfig {
            window: 2,
            min_samples: 2,
            trip_fault_rate: 0.5,
            probation_steps: 3,
            ..Default::default()
        });
        s.record_step(true, 0);
        s.record_step(true, 0);
        assert_eq!(s.state(), TenantState::Degraded);
        let now = s.backoff_ticks(0);
        assert!(s.retry_due(now));
        assert_eq!(s.begin_trial(), TenantState::Recovering);
        assert_eq!(s.record_step(false, now + 1), None);
        assert_eq!(s.record_step(false, now + 2), None);
        assert_eq!(s.record_step(false, now + 3), Some(TenantState::Healthy));
        assert_eq!(s.attempt(), 0, "full recovery resets the exponent");
    }

    #[test]
    fn faulty_probation_reopens_with_longer_backoff() {
        let mut s = sup(SupervisorConfig {
            window: 2,
            min_samples: 2,
            trip_fault_rate: 0.5,
            backoff_base: 4,
            backoff_max: 1024,
            ..Default::default()
        });
        s.record_step(true, 0);
        s.record_step(true, 0);
        assert_eq!(s.state(), TenantState::Degraded);
        let first = s.backoff_ticks(0);
        s.begin_trial();
        assert_eq!(s.record_step(true, first), Some(TenantState::Degraded));
        assert!(
            s.backoff_ticks(1) > first,
            "second attempt backs off longer"
        );
        assert!(!s.retry_due(first + 1));
    }

    #[test]
    fn panic_quarantines_and_reload_budget_bounds_retries() {
        let mut s = sup(SupervisorConfig {
            retry_budget: 2,
            backoff_base: 2,
            backoff_max: 8,
            ..Default::default()
        });
        assert_eq!(s.record_panic(0), TenantState::Quarantined);
        let mut now = 0;
        for used in 1..=2u32 {
            while !s.retry_due(now) {
                now += 1;
            }
            assert_eq!(s.reload_result(false, now), TenantState::Quarantined);
            assert_eq!(s.reloads_used(), used);
        }
        assert!(s.exhausted());
        // Never due again: no hot-looping on a dead checkpoint.
        for t in now..now + 10_000 {
            assert!(!s.retry_due(t));
        }
    }

    #[test]
    fn reload_ok_moves_to_probation() {
        let mut s = sup(SupervisorConfig {
            backoff_base: 1,
            probation_steps: 1,
            ..Default::default()
        });
        s.record_panic(0);
        let mut now = 0;
        while !s.retry_due(now) {
            now += 1;
        }
        assert_eq!(s.reload_result(true, now), TenantState::Recovering);
        assert_eq!(s.record_step(false, now + 1), Some(TenantState::Healthy));
    }

    #[test]
    fn saturating_shl_pins_at_max() {
        assert_eq!(1u64.saturating_shl(63), 1 << 63);
        assert_eq!(2u64.saturating_shl(63), u64::MAX);
        assert_eq!(1u64.saturating_shl(64), u64::MAX);
    }
}
