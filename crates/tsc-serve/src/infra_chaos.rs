//! Deterministic **infrastructure** chaos for the fleet layer.
//!
//! [`tsc_sim::ChaosPlan`] perturbs the world a controller sees
//! (sensing, actuation, comms). An [`InfraChaosPlan`] perturbs the
//! serving infrastructure itself — the faults a fleet operator fears:
//!
//! * **tenant panics** — the tenant's policy step panics (exercising
//!   the `catch_unwind` crash isolation for real);
//! * **reload corruption** — a quarantined tenant's checkpoint reload
//!   attempt fails validation (as if the file rotted on disk);
//! * **latency spikes** — the tenant's policy path stalls for a fixed
//!   extra delay (driving deadline overruns and the circuit breaker);
//! * **reload storms** — operators hammering hot reload: a reload is
//!   staged every `k` steps, forcing `ReloadInFlight` degradation.
//!
//! The determinism discipline is exactly the chaos engine's: every
//! fault is active on a half-open [`Window`] of **fleet decision
//! steps** and draws its probabilistic decisions from a splitmix64
//! hash of `(seed, fault index, step, tenant)` via
//! [`tsc_sim::chaos::chaos_uniform`]. The plan consumes **no RNG
//! state**: an empty plan is bit-identical to no plan, and the same
//! `seed + plan` replays bit-for-bit (both pinned by tier-1 tests,
//! like `ChaosPlan`).

use std::time::Duration;

use tsc_obs::Json;
use tsc_sim::chaos::{chaos_uniform, fault_salt};
use tsc_sim::Window;

/// Salt decorrelating the infra-chaos hash streams from the
/// road-fault streams of a `ChaosPlan` keyed by the same user seed.
const INFRA_SALT: u64 = 0x1a9f_0c3d_5b71_e842;

/// Which tenants a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantSel {
    /// Every tenant of the fleet.
    All,
    /// One specific tenant index.
    One(usize),
}

impl TenantSel {
    /// Whether `tenant` is targeted.
    pub fn matches(&self, tenant: usize) -> bool {
        match self {
            TenantSel::All => true,
            TenantSel::One(t) => *t == tenant,
        }
    }

    /// The specific tenant index, if the selector names one.
    pub fn one(&self) -> Option<usize> {
        match self {
            TenantSel::All => None,
            TenantSel::One(t) => Some(*t),
        }
    }
}

/// An infrastructure fault mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InfraKind {
    /// Each step inside the window, the tenant's policy step panics
    /// with probability `p` (deterministic in `(step, tenant)`).
    Panic {
        /// Per-step panic probability in `[0, 1]`.
        p: f64,
    },
    /// Each checkpoint reload attempted inside the window fails as
    /// corrupt with probability `p` (deterministic in `(step,
    /// tenant)`), consuming the tenant's retry budget.
    ReloadCorrupt {
        /// Per-attempt corruption probability in `[0, 1]`.
        p: f64,
    },
    /// Each step inside the window, the tenant's policy path stalls
    /// an extra `extra_us` microseconds with probability `p`.
    LatencySpike {
        /// Injected extra latency (µs).
        extra_us: u64,
        /// Per-step spike probability in `[0, 1]`.
        p: f64,
    },
    /// A hot reload of the tenant's checkpoint is staged every
    /// `every` steps inside the window (committed on the following
    /// step), forcing `ReloadInFlight` fallback service.
    ReloadStorm {
        /// Steps between forced reloads (≥ 1).
        every: u32,
    },
}

/// A scheduled infrastructure fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InfraFault {
    /// When the fault is active (fleet decision steps).
    pub window: Window,
    /// Which tenants it hits.
    pub tenants: TenantSel,
    /// What it does.
    pub kind: InfraKind,
}

/// A deterministic schedule of infrastructure faults for a fleet,
/// built in the same chained-builder style as
/// [`tsc_sim::ChaosPlan`]. Installed via
/// [`FleetRuntime::set_infra_chaos`](crate::FleetRuntime::set_infra_chaos).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InfraChaosPlan {
    faults: Vec<InfraFault>,
}

impl InfraChaosPlan {
    /// An empty plan (injects nothing; the fleet is bit-identical to
    /// one without a plan installed).
    pub fn new() -> Self {
        InfraChaosPlan::default()
    }

    /// Injected panics: targeted tenants' policy steps panic with
    /// probability `p` each step of `window`.
    pub fn tenant_panic(mut self, window: Window, tenants: TenantSel, p: f64) -> Self {
        self.faults.push(InfraFault {
            window,
            tenants,
            kind: InfraKind::Panic { p },
        });
        self
    }

    /// Reload corruption: targeted tenants' checkpoint reload attempts
    /// fail with probability `p` during `window`.
    pub fn reload_corrupt(mut self, window: Window, tenants: TenantSel, p: f64) -> Self {
        self.faults.push(InfraFault {
            window,
            tenants,
            kind: InfraKind::ReloadCorrupt { p },
        });
        self
    }

    /// Latency spikes: targeted tenants stall `extra_us` µs with
    /// probability `p` each step of `window`.
    pub fn latency_spike(
        mut self,
        window: Window,
        tenants: TenantSel,
        extra_us: u64,
        p: f64,
    ) -> Self {
        self.faults.push(InfraFault {
            window,
            tenants,
            kind: InfraKind::LatencySpike { extra_us, p },
        });
        self
    }

    /// Reload storm: a hot reload is forced on targeted tenants every
    /// `every` steps of `window`.
    pub fn reload_storm(mut self, window: Window, tenants: TenantSel, every: u32) -> Self {
        self.faults.push(InfraFault {
            window,
            tenants,
            kind: InfraKind::ReloadStorm {
                every: every.max(1),
            },
        });
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[InfraFault] {
        &self.faults
    }

    /// Whether the tenant's policy step panics at `step` under `seed`.
    pub fn panics(&self, seed: u64, step: u64, tenant: usize) -> bool {
        self.hits(seed, step, tenant, |k| match k {
            InfraKind::Panic { p } => Some(p),
            _ => None,
        })
    }

    /// Whether a reload attempted at `step` by `tenant` is corrupted.
    pub fn corrupts_reload(&self, seed: u64, step: u64, tenant: usize) -> bool {
        self.hits(seed, step, tenant, |k| match k {
            InfraKind::ReloadCorrupt { p } => Some(p),
            _ => None,
        })
    }

    /// The injected latency for the tenant's step, if any spike fires
    /// (multiple firing spikes add up).
    pub fn spike(&self, seed: u64, step: u64, tenant: usize) -> Option<Duration> {
        let mut total_us = 0u64;
        for (idx, fault) in self.faults.iter().enumerate() {
            if let InfraKind::LatencySpike { extra_us, p } = fault.kind {
                if fault.window.contains(clamp_step(step))
                    && fault.tenants.matches(tenant)
                    && chaos_uniform(fault_salt(seed ^ INFRA_SALT, idx), clamp_step(step), tenant)
                        < p
                {
                    total_us += extra_us;
                }
            }
        }
        (total_us > 0).then(|| Duration::from_micros(total_us))
    }

    /// Whether a reload storm forces a staging on this tenant at
    /// `step` (the cadence is anchored at each window's start).
    pub fn storm_due(&self, step: u64, tenant: usize) -> bool {
        self.faults.iter().any(|fault| {
            if let InfraKind::ReloadStorm { every } = fault.kind {
                let s = clamp_step(step);
                fault.window.contains(s)
                    && fault.tenants.matches(tenant)
                    && (s - fault.window.start).is_multiple_of(every)
            } else {
                false
            }
        })
    }

    /// Which faults have `tenant` **in scope** at `step`: bit `i` is
    /// set when fault `i`'s window contains the step and its selector
    /// matches the tenant (whether or not its probabilistic draw
    /// fired). This is the flight-recorder frame's `chaos_mask` —
    /// deterministic, so it replays bit-for-bit. Fault indices past 31
    /// share nothing (a plan that large saturates the mask's top bit).
    pub fn active_mask(&self, step: u64, tenant: usize) -> u32 {
        let s = clamp_step(step);
        let mut mask = 0u32;
        for (idx, fault) in self.faults.iter().enumerate() {
            if fault.window.contains(s) && fault.tenants.matches(tenant) {
                mask |= 1u32 << idx.min(31);
            }
        }
        mask
    }

    /// The plan as a JSON array of faults — the incident file's replay
    /// context. [`from_json`](Self::from_json) round-trips it exactly
    /// (probabilities are `f64`s rendered at full precision).
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.faults
                .iter()
                .map(|f| {
                    let kind = match f.kind {
                        InfraKind::Panic { p } => {
                            Json::obj([("kind", Json::str("panic")), ("p", Json::num(p))])
                        }
                        InfraKind::ReloadCorrupt { p } => {
                            Json::obj([("kind", Json::str("reload_corrupt")), ("p", Json::num(p))])
                        }
                        InfraKind::LatencySpike { extra_us, p } => Json::obj([
                            ("kind", Json::str("latency_spike")),
                            ("extra_us", Json::num(extra_us as f64)),
                            ("p", Json::num(p)),
                        ]),
                        InfraKind::ReloadStorm { every } => Json::obj([
                            ("kind", Json::str("reload_storm")),
                            ("every", Json::num(f64::from(every))),
                        ]),
                    };
                    Json::obj([
                        ("window", window_to_json(f.window)),
                        ("tenants", tenant_sel_to_json(f.tenants)),
                        ("fault", kind),
                    ])
                })
                .collect(),
        )
    }

    /// Parses [`to_json`](Self::to_json) output. `None` on shape
    /// mismatch.
    pub fn from_json(j: &Json) -> Option<Self> {
        let Json::Arr(items) = j else { return None };
        let mut faults = Vec::with_capacity(items.len());
        for item in items {
            let window = window_from_json(item.get("window")?)?;
            let tenants = tenant_sel_from_json(item.get("tenants")?)?;
            let f = item.get("fault")?;
            let kind = match f.get_str("kind")? {
                "panic" => InfraKind::Panic { p: f.get_num("p")? },
                "reload_corrupt" => InfraKind::ReloadCorrupt { p: f.get_num("p")? },
                "latency_spike" => InfraKind::LatencySpike {
                    extra_us: f.get_num("extra_us")? as u64,
                    p: f.get_num("p")?,
                },
                "reload_storm" => InfraKind::ReloadStorm {
                    every: f.get_num("every")? as u32,
                },
                _ => return None,
            };
            faults.push(InfraFault {
                window,
                tenants,
                kind,
            });
        }
        Some(InfraChaosPlan { faults })
    }

    /// Shared per-fault hash evaluation: any matching fault whose
    /// uniform draw lands under its probability fires.
    fn hits(
        &self,
        seed: u64,
        step: u64,
        tenant: usize,
        prob: impl Fn(InfraKind) -> Option<f64>,
    ) -> bool {
        self.faults.iter().enumerate().any(|(idx, fault)| {
            prob(fault.kind).is_some_and(|p| {
                fault.window.contains(clamp_step(step))
                    && fault.tenants.matches(tenant)
                    && chaos_uniform(fault_salt(seed ^ INFRA_SALT, idx), clamp_step(step), tenant)
                        < p
            })
        })
    }
}

/// Fleet steps are `u64`; fault windows reuse the chaos engine's
/// `u32` [`Window`]. Steps beyond `u32::MAX` pin to the last window
/// tick (a fleet serving 4 × 10⁹ steps has long outlived any fault
/// schedule).
fn clamp_step(step: u64) -> u32 {
    u32::try_from(step).unwrap_or(u32::MAX)
}

/// [`Window`] as `{start, end}` (replay-context material, shared with
/// the load plan's serializer).
pub(crate) fn window_to_json(w: Window) -> Json {
    Json::obj([
        ("start", Json::num(f64::from(w.start))),
        ("end", Json::num(f64::from(w.end))),
    ])
}

/// Parses [`window_to_json`] output.
pub(crate) fn window_from_json(j: &Json) -> Option<Window> {
    Some(Window::new(
        j.get_num("start")? as u32,
        j.get_num("end")? as u32,
    ))
}

/// [`TenantSel`] as `"all"` or a tenant index.
pub(crate) fn tenant_sel_to_json(sel: TenantSel) -> Json {
    match sel {
        TenantSel::All => Json::str("all"),
        TenantSel::One(t) => Json::num(t as f64),
    }
}

/// Parses [`tenant_sel_to_json`] output.
pub(crate) fn tenant_sel_from_json(j: &Json) -> Option<TenantSel> {
    match j {
        Json::Str(s) if s == "all" => Some(TenantSel::All),
        Json::Num(n) => Some(TenantSel::One(*n as usize)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_and_empty_is_empty() {
        assert!(InfraChaosPlan::new().is_empty());
        let plan = InfraChaosPlan::new()
            .tenant_panic(Window::always(), TenantSel::One(1), 1.0)
            .reload_corrupt(Window::new(0, 10), TenantSel::All, 0.5)
            .latency_spike(Window::always(), TenantSel::All, 500, 0.3)
            .reload_storm(Window::new(10, 50), TenantSel::One(0), 7);
        assert!(!plan.is_empty());
        assert_eq!(plan.faults().len(), 4);
    }

    #[test]
    fn selectors_target_tenants() {
        assert!(TenantSel::All.matches(7));
        assert!(TenantSel::One(3).matches(3));
        assert!(!TenantSel::One(3).matches(4));
        assert_eq!(TenantSel::One(3).one(), Some(3));
        assert_eq!(TenantSel::All.one(), None);
    }

    #[test]
    fn probability_one_always_fires_and_zero_never() {
        let always = InfraChaosPlan::new().tenant_panic(Window::always(), TenantSel::All, 1.0);
        let never = InfraChaosPlan::new().tenant_panic(Window::always(), TenantSel::All, 0.0);
        for step in 0..50 {
            assert!(always.panics(9, step, 0));
            assert!(!never.panics(9, step, 0));
        }
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let plan = InfraChaosPlan::new()
            .tenant_panic(Window::always(), TenantSel::All, 0.5)
            .reload_corrupt(Window::always(), TenantSel::All, 0.5);
        let trace = |seed: u64| -> Vec<(bool, bool)> {
            (0..64)
                .map(|t| (plan.panics(seed, t, 1), plan.corrupts_reload(seed, t, 1)))
                .collect()
        };
        assert_eq!(trace(7), trace(7), "bit-reproducible");
        assert_ne!(trace(7), trace(8), "seed changes the stream");
        // The two fault categories draw from decorrelated streams.
        let t = trace(7);
        assert!(t.iter().any(|&(a, b)| a != b));
    }

    #[test]
    fn windows_gate_fault_activity() {
        let plan = InfraChaosPlan::new().tenant_panic(Window::new(10, 20), TenantSel::One(2), 1.0);
        assert!(!plan.panics(0, 9, 2));
        assert!(plan.panics(0, 10, 2));
        assert!(plan.panics(0, 19, 2));
        assert!(!plan.panics(0, 20, 2));
        assert!(!plan.panics(0, 15, 1), "selector misses other tenants");
    }

    #[test]
    fn json_round_trips_every_fault_kind() {
        let plan = InfraChaosPlan::new()
            .tenant_panic(Window::new(3, 9), TenantSel::One(1), 0.37)
            .reload_corrupt(Window::new(0, 10), TenantSel::All, 0.125)
            .latency_spike(Window::always(), TenantSel::All, 450, 0.2)
            .reload_storm(Window::new(10, 50), TenantSel::One(0), 7);
        let text = plan.to_json().compact();
        let back = InfraChaosPlan::from_json(&tsc_obs::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, plan);
        assert_eq!(
            InfraChaosPlan::from_json(&InfraChaosPlan::new().to_json()),
            Some(InfraChaosPlan::new())
        );
    }

    #[test]
    fn active_mask_tracks_window_and_selector_per_fault_index() {
        let plan = InfraChaosPlan::new()
            .tenant_panic(Window::new(0, 5), TenantSel::One(0), 0.0)
            .latency_spike(Window::new(3, 10), TenantSel::All, 100, 0.0);
        assert_eq!(plan.active_mask(1, 0), 0b01, "fault 0 only");
        assert_eq!(plan.active_mask(4, 0), 0b11, "both in scope");
        assert_eq!(plan.active_mask(4, 2), 0b10, "selector misses tenant 2");
        assert_eq!(plan.active_mask(20, 0), 0, "all windows closed");
        assert_eq!(
            InfraChaosPlan::new().active_mask(0, 0),
            0,
            "empty plan has no scope"
        );
    }

    #[test]
    fn spikes_accumulate_and_storms_follow_cadence() {
        let plan = InfraChaosPlan::new()
            .latency_spike(Window::always(), TenantSel::All, 300, 1.0)
            .latency_spike(Window::always(), TenantSel::All, 200, 1.0)
            .reload_storm(Window::new(4, 20), TenantSel::All, 5);
        assert_eq!(plan.spike(0, 3, 0), Some(Duration::from_micros(500)));
        assert!(plan.storm_due(4, 0));
        assert!(!plan.storm_due(5, 0));
        assert!(plan.storm_due(9, 0));
        assert!(!plan.storm_due(24, 0), "window closed");
        assert_eq!(
            InfraChaosPlan::new().spike(0, 0, 0),
            None,
            "empty plan injects nothing"
        );
    }
}
