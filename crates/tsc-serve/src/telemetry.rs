//! Serving telemetry: decision throughput, latency percentiles, and
//! fallback accounting — all recorded with zero per-step allocation.
//!
//! Latencies go into a [`tsc_obs::Histogram`] — the workspace-wide
//! mergeable streaming histogram (64 log-spaced buckets, 1 µs … ≈1.2 s
//! at ×1.25) — so serve-side latency distributions can be merged with,
//! and exported alongside, every other histogram in the observability
//! layer. Percentiles are read off the cumulative bucket counts, so
//! [`record`](ServeTelemetry::record) is a handful of integer
//! operations no matter how long the runtime serves.

use std::time::Duration;

use tsc_obs::Histogram;

use crate::admission::ServiceLevel;
use crate::engine::DegradeReason;

/// Streaming serving metrics. Create with [`ServeTelemetry::new`],
/// feed with [`record`](ServeTelemetry::record) once per served step
/// (and, on fleets with admission control, with
/// [`record_admission`](ServeTelemetry::record_admission) once per
/// admission decision).
#[derive(Debug, Clone)]
pub struct ServeTelemetry {
    latency: Histogram,
    decisions: u64,
    fallback_decisions: u64,
    degraded_steps: u64,
    per_agent_fallbacks: Vec<u64>,
    /// Per agent, fallback decisions broken down by [`DegradeReason`]
    /// (indexed by [`DegradeReason::index`]).
    per_agent_causes: Vec<[u64; DegradeReason::COUNT]>,
    /// Admission decisions by brownout-ladder rung (indexed by
    /// [`ServiceLevel::index`]); all zero without admission control.
    level_steps: [u64; ServiceLevel::COUNT],
    /// Requests offered to the admission controller.
    offered_requests: u64,
    /// Offered requests refused by shedding.
    shed_requests: u64,
}

impl ServeTelemetry {
    /// Empty telemetry for a grid of `num_agents` intersections.
    pub fn new(num_agents: usize) -> Self {
        ServeTelemetry {
            latency: Histogram::new(),
            decisions: 0,
            fallback_decisions: 0,
            degraded_steps: 0,
            per_agent_fallbacks: vec![0; num_agents],
            per_agent_causes: vec![[0; DegradeReason::COUNT]; num_agents],
            level_steps: [0; ServiceLevel::COUNT],
            offered_requests: 0,
            shed_requests: 0,
        }
    }

    /// Records one served step: its wall-clock latency, which agents
    /// fell back to the degraded controller and why (`None` = served
    /// by the policy), and whether the step as a whole was degraded.
    /// Allocation-free.
    pub fn record(&mut self, latency: Duration, causes: &[Option<DegradeReason>], degraded: bool) {
        self.latency.record(latency);
        self.decisions += causes.len() as u64;
        if degraded {
            self.degraded_steps += 1;
        }
        for (a, cause) in causes.iter().enumerate() {
            if let Some(reason) = cause {
                self.fallback_decisions += 1;
                if let Some(slot) = self.per_agent_fallbacks.get_mut(a) {
                    *slot += 1;
                }
                if let Some(slots) = self.per_agent_causes.get_mut(a) {
                    slots[reason.index()] += 1;
                }
            }
        }
    }

    /// Records one admission decision: the service level assigned and
    /// the requests offered (all of which count as shed when the level
    /// is [`ServiceLevel::Shed`]). Allocation-free.
    pub fn record_admission(&mut self, level: ServiceLevel, offered: u64) {
        self.level_steps[level.index()] += 1;
        self.offered_requests += offered;
        if level == ServiceLevel::Shed {
            self.shed_requests += offered;
        }
    }

    /// Folds another runtime's telemetry into this one (histograms
    /// merge bucket-wise; agent breakdowns require equal grid sizes).
    ///
    /// # Panics
    ///
    /// Panics if the two sides track different numbers of agents.
    pub fn merge(&mut self, other: &ServeTelemetry) {
        assert_eq!(
            self.per_agent_fallbacks.len(),
            other.per_agent_fallbacks.len(),
            "merging telemetry from different grid sizes"
        );
        self.latency.merge(&other.latency);
        self.decisions += other.decisions;
        self.fallback_decisions += other.fallback_decisions;
        self.degraded_steps += other.degraded_steps;
        for (slot, o) in self.level_steps.iter_mut().zip(&other.level_steps) {
            *slot += o;
        }
        self.offered_requests += other.offered_requests;
        self.shed_requests += other.shed_requests;
        for (slot, o) in self
            .per_agent_fallbacks
            .iter_mut()
            .zip(&other.per_agent_fallbacks)
        {
            *slot += o;
        }
        for (slots, os) in self
            .per_agent_causes
            .iter_mut()
            .zip(&other.per_agent_causes)
        {
            for (slot, o) in slots.iter_mut().zip(os) {
                *slot += o;
            }
        }
    }

    /// The step-latency histogram (for export through the
    /// observability layer).
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency
    }

    /// Steps served so far.
    pub fn steps(&self) -> u64 {
        self.latency.count()
    }

    /// Per-agent decisions issued so far (steps × agents).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Decisions answered by the degraded (MaxPressure) controller.
    pub fn fallback_decisions(&self) -> u64 {
        self.fallback_decisions
    }

    /// Steps where at least the degradation path was engaged.
    pub fn degraded_steps(&self) -> u64 {
        self.degraded_steps
    }

    /// Fallback decision count per agent, in agent order.
    pub fn per_agent_fallbacks(&self) -> &[u64] {
        &self.per_agent_fallbacks
    }

    /// Per-agent fallback decisions broken down by cause, indexed by
    /// [`DegradeReason::index`] (see [`DegradeReason::ALL`] for the
    /// order).
    pub fn per_agent_causes(&self) -> &[[u64; DegradeReason::COUNT]] {
        &self.per_agent_causes
    }

    /// Admission decisions per brownout-ladder rung, indexed by
    /// [`ServiceLevel::index`] (see [`ServiceLevel::ALL`] for the
    /// order). All zero without admission control.
    pub fn level_steps(&self) -> &[u64; ServiceLevel::COUNT] {
        &self.level_steps
    }

    /// Admission decisions for one service level.
    pub fn steps_at(&self, level: ServiceLevel) -> u64 {
        self.level_steps[level.index()]
    }

    /// Requests offered to the admission controller so far.
    pub fn offered_requests(&self) -> u64 {
        self.offered_requests
    }

    /// Offered requests refused by shedding.
    pub fn shed_requests(&self) -> u64 {
        self.shed_requests
    }

    /// Fraction of offered requests that were shed (0 when nothing
    /// was offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered_requests == 0 {
            0.0
        } else {
            self.shed_requests as f64 / self.offered_requests as f64
        }
    }

    /// Grid-wide fallback decisions for one cause.
    pub fn fallbacks_for(&self, reason: DegradeReason) -> u64 {
        self.per_agent_causes
            .iter()
            .map(|slots| slots[reason.index()])
            .sum()
    }

    /// Fraction of decisions served by the fallback controller.
    pub fn fallback_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.fallback_decisions as f64 / self.decisions as f64
        }
    }

    /// Per-agent decisions per wall-clock second of serving.
    pub fn decisions_per_sec(&self) -> f64 {
        let total_ns = self.latency.total_ns();
        if total_ns == 0 {
            0.0
        } else {
            self.decisions as f64 / (total_ns as f64 / 1e9)
        }
    }

    /// Latency at quantile `q` in microseconds: 0 when nothing was
    /// recorded, the *exact* extrema at `q ≤ 0` / `q ≥ 1`, and
    /// otherwise the upper edge of the histogram bucket containing the
    /// quantile (see [`Histogram::percentile_us`]).
    pub fn percentile_us(&self, q: f64) -> f64 {
        self.latency.percentile_us(q)
    }

    /// Median step latency in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.percentile_us(0.50)
    }

    /// 95th-percentile step latency in microseconds.
    pub fn p95_us(&self) -> f64 {
        self.percentile_us(0.95)
    }

    /// 99th-percentile step latency in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.percentile_us(0.99)
    }

    /// Mean step latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.latency.mean_us()
    }

    /// Fastest recorded step in microseconds (0 when empty).
    pub fn min_us(&self) -> f64 {
        self.latency.min_us()
    }

    /// Slowest recorded step in microseconds.
    pub fn max_us(&self) -> f64 {
        self.latency.max_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_telemetry_reads_zero() {
        let t = ServeTelemetry::new(4);
        assert_eq!(t.steps(), 0);
        assert_eq!(t.p50_us(), 0.0);
        assert_eq!(t.percentile_us(0.0), 0.0);
        assert_eq!(t.percentile_us(1.0), 0.0);
        assert_eq!(t.fallback_rate(), 0.0);
        assert_eq!(t.decisions_per_sec(), 0.0);
        assert_eq!(t.min_us(), 0.0);
    }

    #[test]
    fn percentiles_are_monotone_and_bracket_the_data() {
        let mut t = ServeTelemetry::new(2);
        for i in 1..=100u64 {
            t.record(Duration::from_micros(i * 10), &[None, None], false);
        }
        let (p50, p95, p99) = (t.p50_us(), t.p95_us(), t.p99_us());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Bucket upper edges overestimate by at most one ratio step.
        let ratio = Histogram::RATIO;
        assert!((500.0..=500.0 * ratio).contains(&p50), "{p50}");
        assert!((990.0..=990.0 * ratio).contains(&p99), "{p99}");
        assert_eq!(t.decisions(), 200);
        assert!(t.max_us() >= 1000.0);
        assert_eq!(t.min_us(), 10.0); // min/max are exact, not bucketed
    }

    #[test]
    fn extreme_quantiles_are_exact_even_for_a_single_sample() {
        let mut t = ServeTelemetry::new(1);
        t.record(Duration::from_micros(123), &[None], false);
        // One sample: every quantile is that sample; the extrema are
        // exact while interior quantiles pay bucket resolution.
        assert_eq!(t.percentile_us(0.0), 123.0);
        assert_eq!(t.percentile_us(1.0), 123.0);
        let p50 = t.p50_us();
        assert!((123.0..=123.0 * Histogram::RATIO).contains(&p50), "{p50}");

        let mut t = ServeTelemetry::new(1);
        t.record(Duration::from_micros(10), &[None], false);
        t.record(Duration::from_micros(990), &[None], false);
        assert_eq!(t.percentile_us(0.0), 10.0);
        assert_eq!(t.percentile_us(-3.0), 10.0); // clamped, still exact min
        assert_eq!(t.percentile_us(1.0), 990.0);
        assert_eq!(t.percentile_us(7.0), 990.0); // clamped, still exact max
    }

    #[test]
    fn merge_folds_counters_and_latency() {
        use DegradeReason::*;
        let mut a = ServeTelemetry::new(2);
        a.record(Duration::from_micros(10), &[Some(SensorHealth), None], true);
        let mut b = ServeTelemetry::new(2);
        b.record(Duration::from_micros(1000), &[None, None], false);
        b.record(
            Duration::from_micros(1000),
            &[None, Some(CommsHealth)],
            true,
        );
        a.merge(&b);
        assert_eq!(a.steps(), 3);
        assert_eq!(a.decisions(), 6);
        assert_eq!(a.fallback_decisions(), 2);
        assert_eq!(a.degraded_steps(), 2);
        assert_eq!(a.per_agent_fallbacks(), &[1, 1]);
        assert_eq!(a.min_us(), 10.0);
        assert_eq!(a.max_us(), 1000.0);
    }

    #[test]
    fn fallback_accounting_is_per_agent() {
        use DegradeReason::*;
        let mut t = ServeTelemetry::new(3);
        t.record(
            Duration::from_micros(5),
            &[Some(DeadlineOverrun), None, Some(SensorHealth)],
            true,
        );
        t.record(
            Duration::from_micros(5),
            &[None, None, Some(CommsHealth)],
            true,
        );
        t.record(Duration::from_micros(5), &[None, None, None], false);
        assert_eq!(t.fallback_decisions(), 3);
        assert_eq!(t.per_agent_fallbacks(), &[1, 0, 2]);
        assert_eq!(t.degraded_steps(), 2);
        assert!((t.fallback_rate() - 3.0 / 9.0).abs() < 1e-12);
        assert_eq!(t.per_agent_causes()[0], [1, 0, 0, 0]);
        assert_eq!(t.per_agent_causes()[2], [0, 0, 1, 1]);
        assert_eq!(t.fallbacks_for(DeadlineOverrun), 1);
        assert_eq!(t.fallbacks_for(SensorHealth), 1);
        assert_eq!(t.fallbacks_for(CommsHealth), 1);
        assert_eq!(t.fallbacks_for(ReloadInFlight), 0);
    }

    #[test]
    fn admission_counters_accumulate_and_merge() {
        use ServiceLevel::*;
        let mut a = ServeTelemetry::new(1);
        a.record_admission(Full, 3);
        a.record_admission(Shed, 5);
        assert_eq!(a.steps_at(Full), 1);
        assert_eq!(a.steps_at(Shed), 1);
        assert_eq!(a.offered_requests(), 8);
        assert_eq!(a.shed_requests(), 5);
        assert!((a.shed_rate() - 5.0 / 8.0).abs() < 1e-12);
        let mut b = ServeTelemetry::new(1);
        b.record_admission(Degraded, 2);
        b.record_admission(Standby, 1);
        a.merge(&b);
        assert_eq!(a.level_steps(), &[1, 1, 1, 1]);
        assert_eq!(a.offered_requests(), 11);
        assert_eq!(a.shed_requests(), 5);
        assert_eq!(ServeTelemetry::new(2).shed_rate(), 0.0);
    }

    #[test]
    fn sub_microsecond_latencies_land_in_the_first_bucket() {
        let mut t = ServeTelemetry::new(1);
        t.record(Duration::from_nanos(10), &[None], false);
        assert_eq!(t.p50_us(), 1.0);
    }
}
