//! Serving telemetry: decision throughput, latency percentiles, and
//! fallback accounting — all recorded with zero per-step allocation.
//!
//! Latencies go into a fixed array of log-spaced buckets (a streaming
//! histogram); percentiles are read off the cumulative bucket counts,
//! so `record` is a handful of integer operations no matter how long
//! the runtime serves.

use std::time::Duration;

use crate::engine::DegradeReason;

/// Number of log-spaced latency buckets.
const BUCKETS: usize = 64;
/// Lower edge of the first bucket, nanoseconds (1 µs).
const BASE_NS: f64 = 1_000.0;
/// Geometric ratio between bucket edges. 64 buckets at ×1.25 span
/// 1 µs … ≈ 1.2 s, far beyond any sane per-step deadline.
const RATIO: f64 = 1.25;

/// Streaming serving metrics. Create with [`ServeTelemetry::new`],
/// feed with [`record`](ServeTelemetry::record) once per served step.
#[derive(Debug, Clone)]
pub struct ServeTelemetry {
    buckets: [u64; BUCKETS],
    steps: u64,
    decisions: u64,
    fallback_decisions: u64,
    degraded_steps: u64,
    per_agent_fallbacks: Vec<u64>,
    /// Per agent, fallback decisions broken down by [`DegradeReason`]
    /// (indexed by [`DegradeReason::index`]).
    per_agent_causes: Vec<[u64; DegradeReason::COUNT]>,
    total_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl ServeTelemetry {
    /// Empty telemetry for a grid of `num_agents` intersections.
    pub fn new(num_agents: usize) -> Self {
        ServeTelemetry {
            buckets: [0; BUCKETS],
            steps: 0,
            decisions: 0,
            fallback_decisions: 0,
            degraded_steps: 0,
            per_agent_fallbacks: vec![0; num_agents],
            per_agent_causes: vec![[0; DegradeReason::COUNT]; num_agents],
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn bucket_for(ns: u64) -> usize {
        if (ns as f64) <= BASE_NS {
            return 0;
        }
        let idx = ((ns as f64) / BASE_NS).ln() / RATIO.ln();
        (idx.ceil() as usize).min(BUCKETS - 1)
    }

    /// Upper edge of bucket `i` in microseconds.
    fn bucket_edge_us(i: usize) -> f64 {
        BASE_NS * RATIO.powi(i as i32) / 1_000.0
    }

    /// Records one served step: its wall-clock latency, which agents
    /// fell back to the degraded controller and why (`None` = served
    /// by the policy), and whether the step as a whole was degraded.
    /// Allocation-free.
    pub fn record(&mut self, latency: Duration, causes: &[Option<DegradeReason>], degraded: bool) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_for(ns)] += 1;
        self.steps += 1;
        self.decisions += causes.len() as u64;
        self.total_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        if degraded {
            self.degraded_steps += 1;
        }
        for (a, cause) in causes.iter().enumerate() {
            if let Some(reason) = cause {
                self.fallback_decisions += 1;
                if let Some(slot) = self.per_agent_fallbacks.get_mut(a) {
                    *slot += 1;
                }
                if let Some(slots) = self.per_agent_causes.get_mut(a) {
                    slots[reason.index()] += 1;
                }
            }
        }
    }

    /// Steps served so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Per-agent decisions issued so far (steps × agents).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Decisions answered by the degraded (MaxPressure) controller.
    pub fn fallback_decisions(&self) -> u64 {
        self.fallback_decisions
    }

    /// Steps where at least the degradation path was engaged.
    pub fn degraded_steps(&self) -> u64 {
        self.degraded_steps
    }

    /// Fallback decision count per agent, in agent order.
    pub fn per_agent_fallbacks(&self) -> &[u64] {
        &self.per_agent_fallbacks
    }

    /// Per-agent fallback decisions broken down by cause, indexed by
    /// [`DegradeReason::index`] (see [`DegradeReason::ALL`] for the
    /// order).
    pub fn per_agent_causes(&self) -> &[[u64; DegradeReason::COUNT]] {
        &self.per_agent_causes
    }

    /// Grid-wide fallback decisions for one cause.
    pub fn fallbacks_for(&self, reason: DegradeReason) -> u64 {
        self.per_agent_causes
            .iter()
            .map(|slots| slots[reason.index()])
            .sum()
    }

    /// Fraction of decisions served by the fallback controller.
    pub fn fallback_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.fallback_decisions as f64 / self.decisions as f64
        }
    }

    /// Per-agent decisions per wall-clock second of serving.
    pub fn decisions_per_sec(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.decisions as f64 / (self.total_ns as f64 / 1e9)
        }
    }

    /// Latency at quantile `q` in microseconds (upper edge of the
    /// histogram bucket containing it), or 0 when nothing was recorded.
    pub fn percentile_us(&self, q: f64) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.steps as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            cum += count;
            if cum >= rank {
                return Self::bucket_edge_us(i);
            }
        }
        Self::bucket_edge_us(BUCKETS - 1)
    }

    /// Median step latency in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.percentile_us(0.50)
    }

    /// 95th-percentile step latency in microseconds.
    pub fn p95_us(&self) -> f64 {
        self.percentile_us(0.95)
    }

    /// 99th-percentile step latency in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.percentile_us(0.99)
    }

    /// Mean step latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.steps as f64 / 1_000.0
        }
    }

    /// Fastest recorded step in microseconds (0 when empty).
    pub fn min_us(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.min_ns as f64 / 1_000.0
        }
    }

    /// Slowest recorded step in microseconds.
    pub fn max_us(&self) -> f64 {
        self.max_ns as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_telemetry_reads_zero() {
        let t = ServeTelemetry::new(4);
        assert_eq!(t.steps(), 0);
        assert_eq!(t.p50_us(), 0.0);
        assert_eq!(t.fallback_rate(), 0.0);
        assert_eq!(t.decisions_per_sec(), 0.0);
        assert_eq!(t.min_us(), 0.0);
    }

    #[test]
    fn percentiles_are_monotone_and_bracket_the_data() {
        let mut t = ServeTelemetry::new(2);
        for i in 1..=100u64 {
            t.record(Duration::from_micros(i * 10), &[None, None], false);
        }
        let (p50, p95, p99) = (t.p50_us(), t.p95_us(), t.p99_us());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Bucket upper edges overestimate by at most one ratio step.
        assert!((500.0..=500.0 * RATIO).contains(&p50), "{p50}");
        assert!((990.0..=990.0 * RATIO).contains(&p99), "{p99}");
        assert_eq!(t.decisions(), 200);
        assert!(t.max_us() >= 1000.0);
        assert_eq!(t.min_us(), 10.0); // min/max are exact, not bucketed
    }

    #[test]
    fn fallback_accounting_is_per_agent() {
        use DegradeReason::*;
        let mut t = ServeTelemetry::new(3);
        t.record(
            Duration::from_micros(5),
            &[Some(DeadlineOverrun), None, Some(SensorHealth)],
            true,
        );
        t.record(
            Duration::from_micros(5),
            &[None, None, Some(CommsHealth)],
            true,
        );
        t.record(Duration::from_micros(5), &[None, None, None], false);
        assert_eq!(t.fallback_decisions(), 3);
        assert_eq!(t.per_agent_fallbacks(), &[1, 0, 2]);
        assert_eq!(t.degraded_steps(), 2);
        assert!((t.fallback_rate() - 3.0 / 9.0).abs() < 1e-12);
        assert_eq!(t.per_agent_causes()[0], [1, 0, 0, 0]);
        assert_eq!(t.per_agent_causes()[2], [0, 0, 1, 1]);
        assert_eq!(t.fallbacks_for(DeadlineOverrun), 1);
        assert_eq!(t.fallbacks_for(SensorHealth), 1);
        assert_eq!(t.fallbacks_for(CommsHealth), 1);
        assert_eq!(t.fallbacks_for(ReloadInFlight), 0);
    }

    #[test]
    fn sub_microsecond_latencies_land_in_the_first_bucket() {
        let mut t = ServeTelemetry::new(1);
        t.record(Duration::from_nanos(10), &[None], false);
        assert_eq!(t.p50_us(), 1.0);
    }
}
