//! Exhaustive coverage of the supervisor state machine: every
//! `(state, event)` pair of the pure transition table, checked against
//! an independently-written expectation — plus invariants the table
//! must keep no matter how it evolves.

use tsc_serve::{Supervisor, TenantEvent, TenantState};

/// Independent restatement of the intended semantics, written out
/// pair-by-pair (not by copying the implementation's match shape) so
/// a typo in either side fails the build of expectations below.
fn expected(state: TenantState, event: TenantEvent) -> TenantState {
    use TenantEvent::*;
    use TenantState::*;
    match (state, event) {
        // Healthy: only a fault signal moves it.
        (Healthy, StepOk) => Healthy,
        (Healthy, SoftFault) => Healthy, // single faults feed the window, not the state
        (Healthy, Panic) => Quarantined,
        (Healthy, BreakerTripped) => Degraded,
        (Healthy, BackoffElapsed) => Healthy,
        (Healthy, ReloadOk) => Healthy,
        (Healthy, ReloadFailed) => Healthy,
        (Healthy, ProbationPassed) => Healthy,
        // Degraded: waits out backoff; a panic while waiting (e.g.
        // from a storm commit) still quarantines.
        (Degraded, StepOk) => Degraded,
        (Degraded, SoftFault) => Degraded,
        (Degraded, Panic) => Quarantined,
        (Degraded, BreakerTripped) => Degraded,
        (Degraded, BackoffElapsed) => Recovering,
        (Degraded, ReloadOk) => Degraded,
        (Degraded, ReloadFailed) => Degraded,
        (Degraded, ProbationPassed) => Degraded,
        // Quarantined: only a successful reload gets it out.
        (Quarantined, StepOk) => Quarantined,
        (Quarantined, SoftFault) => Quarantined,
        (Quarantined, Panic) => Quarantined, // its policy never runs
        (Quarantined, BreakerTripped) => Quarantined,
        (Quarantined, BackoffElapsed) => Quarantined,
        (Quarantined, ReloadOk) => Recovering,
        (Quarantined, ReloadFailed) => Quarantined,
        (Quarantined, ProbationPassed) => Quarantined,
        // Recovering: clean streak closes, any fault re-opens.
        (Recovering, StepOk) => Recovering,
        (Recovering, SoftFault) => Degraded,
        (Recovering, Panic) => Quarantined,
        (Recovering, BreakerTripped) => Degraded,
        (Recovering, BackoffElapsed) => Recovering,
        (Recovering, ReloadOk) => Recovering,
        (Recovering, ReloadFailed) => Recovering,
        (Recovering, ProbationPassed) => Healthy,
    }
}

#[test]
fn every_state_event_pair_matches_the_specification() {
    for &state in &TenantState::ALL {
        for &event in &TenantEvent::ALL {
            assert_eq!(
                Supervisor::transition(state, event),
                expected(state, event),
                "transition({state:?}, {event:?})"
            );
        }
    }
    // The exhaustiveness claim itself: 4 × 8 pairs were covered.
    assert_eq!(TenantState::ALL.len() * TenantEvent::ALL.len(), 32);
}

#[test]
fn structural_invariants_hold_for_every_pair() {
    for &state in &TenantState::ALL {
        for &event in &TenantEvent::ALL {
            let next = Supervisor::transition(state, event);
            // A panic from any policy-serving state always quarantines.
            if state.serves_policy() && event == TenantEvent::Panic {
                assert_eq!(next, TenantState::Quarantined);
            }
            // Nothing ever leaves Quarantined except a successful
            // reload (budget enforcement lives outside the table).
            if state == TenantState::Quarantined && event != TenantEvent::ReloadOk {
                assert_eq!(next, TenantState::Quarantined);
            }
            // Healthy is only reachable from completed probation.
            if next == TenantState::Healthy && state != TenantState::Healthy {
                assert_eq!(
                    (state, event),
                    (TenantState::Recovering, TenantEvent::ProbationPassed)
                );
            }
            // The standby serves in exactly the non-policy states.
            assert_eq!(
                next.serves_policy(),
                matches!(next, TenantState::Healthy | TenantState::Recovering)
            );
        }
    }
}

#[test]
fn state_indices_are_a_dense_permutation() {
    let mut seen = [false; TenantState::COUNT];
    for &s in &TenantState::ALL {
        assert!(!seen[s.index()], "duplicate index {}", s.index());
        seen[s.index()] = true;
    }
    assert!(seen.iter().all(|&b| b));
}
