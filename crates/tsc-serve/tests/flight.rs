//! Flight-recorder invariants: recording must be strictly
//! observation-only (recorder-on AND recorder-off fleets are pinned
//! bit-identical to the pre-recorder fleet), incidents must dump on
//! the right triggers with the cooldown honored, dumped files must
//! round-trip exactly, and the telemetry merge law must keep holding
//! with the recorder enabled.

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_obs::{read_incident, FlightTrigger, Json};
use tsc_serve::{
    FleetConfig, FleetRuntime, FlightConfig, InfraChaosPlan, ServeConfig, SupervisorConfig,
    TenantSel, TenantSpec, TenantState,
};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, TscEnv, Window};

fn tiny_env(seed_pattern: FlowPattern, horizon: u32) -> TscEnv {
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 150.0,
    })
    .unwrap();
    let f = flows(&grid, seed_pattern, &PatternConfig::default()).unwrap();
    let scenario = grid.scenario("flight-test", f).unwrap();
    TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: horizon,
        },
        0,
    )
    .unwrap()
}

fn small_cfg() -> PairUpLightConfig {
    PairUpLightConfig {
        hidden: 16,
        lstm_hidden: 16,
        ..Default::default()
    }
}

fn three_tenants(serve_cfg: ServeConfig) -> (Vec<TscEnv>, Vec<TenantSpec>) {
    let patterns = [FlowPattern::One, FlowPattern::Three, FlowPattern::Five];
    let mut envs = Vec::new();
    let mut specs = Vec::new();
    for (i, &p) in patterns.iter().enumerate() {
        let env = tiny_env(p, 2000);
        let model = PairUpLight::new(&env, small_cfg());
        specs.push(TenantSpec {
            name: format!("tenant-{i}"),
            snapshot: model.policy_snapshot(),
            serve_cfg,
            checkpoint: None,
            sla: Default::default(),
        });
        envs.push(env);
    }
    (envs, specs)
}

/// Exactly the pre-admission behavior digest from `tests/admission.rs`
/// — actions, states, who served, as an external caller sees them.
fn behavior_digest(fleet: &mut FleetRuntime, envs: &mut [TscEnv], steps: usize) -> u64 {
    let mut obs: Vec<_> = envs
        .iter_mut()
        .enumerate()
        .map(|(i, env)| env.reset(100 + i as u64))
        .collect();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mix = |byte: u64, h: &mut u64| {
        *h ^= byte;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for _ in 0..steps {
        let views: Vec<&[_]> = obs.iter().map(|o| o.as_slice()).collect();
        let out = fleet.step(&views).unwrap();
        for (i, (t, env)) in out.tenants.iter().zip(envs.iter_mut()).enumerate() {
            mix(t.state.index() as u64, &mut h);
            mix(u64::from(t.panicked), &mut h);
            for &a in &t.actions {
                mix(a as u64, &mut h);
            }
            obs[i] = env.step(&t.actions).unwrap().obs;
        }
    }
    h
}

/// Captured from the tree BEFORE the admission layer landed (same
/// constant as `tests/admission.rs`); the flight recorder must not
/// move it — on OR off.
const PRE_ADMISSION_DIGEST: u64 = 0xfd54_7cd7_9367_d04f;

/// Acceptance pin: the recorder is strictly observation-only. A fleet
/// with recording enabled and a fleet with it disabled both digest
/// bit-identical to the pre-recorder (pre-admission) fleet.
#[test]
fn recorder_on_and_off_are_bit_identical_to_pre_recorder_fleet() {
    for flight in [None, Some(FlightConfig::default())] {
        let (mut envs, specs) = three_tenants(ServeConfig::default());
        let mut fleet = FleetRuntime::new(
            FleetConfig {
                seed: 77,
                flight,
                ..Default::default()
            },
            specs,
        );
        let digest = behavior_digest(&mut fleet, &mut envs, 30);
        assert_eq!(
            digest, PRE_ADMISSION_DIGEST,
            "flight={flight:?} must not change fleet behavior"
        );
        let health = fleet.flight_health();
        assert_eq!(health.enabled, flight.is_some());
        if flight.is_some() {
            // 3 tenants × 30 steps, nothing dropped at capacity 256.
            assert_eq!(health.frames_recorded, 90);
            assert_eq!(health.frames_dropped, 0);
            let ring = fleet.tenant_flight(0).unwrap();
            assert_eq!(ring.len(), 30);
            let frames = ring.frames();
            assert_eq!(frames.last().unwrap().step, 29);
        } else {
            assert!(fleet.tenant_flight(0).is_none());
            assert_eq!(health.frames_recorded, 0);
        }
    }
}

/// A panicking tenant dumps a panic-triggered incident; the cooldown
/// suppresses the per-step dump storm; the file round-trips exactly
/// through `read_incident` (frames digest and all).
#[test]
fn panic_trigger_dumps_once_per_cooldown_and_file_round_trips() {
    let dir = std::env::temp_dir().join(format!("flight-dump-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let plan = InfraChaosPlan::new().tenant_panic(Window::new(5, 100), TenantSel::One(1), 1.0);
    let (mut envs, specs) = three_tenants(ServeConfig::default());
    let mut fleet = FleetRuntime::new(
        FleetConfig {
            supervisor: SupervisorConfig {
                backoff_base: 1,
                backoff_max: 2,
                ..Default::default()
            },
            seed: 5,
            flight: Some(FlightConfig {
                capacity: 16,
                cooldown: 10,
            }),
            ..Default::default()
        },
        specs,
    );
    fleet.set_infra_chaos(plan).unwrap();
    fleet.set_incident_dir(dir.clone());
    fleet.set_replay_context(Json::obj([("seed", Json::num(5.0))]));
    behavior_digest(&mut fleet, &mut envs, 40);

    assert_eq!(fleet.tenant_state(1), TenantState::Quarantined);
    let health = fleet.flight_health();
    assert!(health.incidents_dumped >= 1, "panic must dump");
    // Cooldown 10 over ≤ 35 faulty steps: at most 4 dumps, not one
    // per panicking step.
    assert!(
        health.incidents_dumped <= 4,
        "cooldown must suppress the dump storm (got {})",
        health.incidents_dumped
    );
    let incidents = fleet.take_incidents();
    assert_eq!(incidents.len() as u64, health.incidents_dumped);
    let first = &incidents[0];
    assert_eq!(first.trigger, FlightTrigger::Panic);
    assert_eq!(first.tenant, 1);
    assert_eq!(first.tenant_name, "tenant-1");
    assert_eq!(first.replay.get_num("seed"), Some(5.0));
    // The dumped frame at the trigger step records the panic.
    assert!(first.frames.last().unwrap().panicked);

    // Every incident file written round-trips bit-exact.
    assert_eq!(fleet.incident_paths().len(), incidents.len());
    for (path, incident) in fleet.incident_paths().iter().zip(&incidents) {
        let back = read_incident(path).unwrap();
        assert_eq!(back.frames_digest(), incident.frames_digest());
        assert_eq!(back.trigger, incident.trigger);
        assert_eq!(back.step, incident.step);
        assert_eq!(back.frames, incident.frames);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An explicit snapshot dumps with the `Snapshot` trigger, bypassing
/// the cooldown, and returns exactly the ring's frames.
#[test]
fn snapshot_bypasses_cooldown_and_matches_the_ring() {
    let (mut envs, specs) = three_tenants(ServeConfig::default());
    let mut fleet = FleetRuntime::new(
        FleetConfig {
            seed: 9,
            flight: Some(FlightConfig {
                capacity: 8,
                cooldown: 1_000_000,
            }),
            ..Default::default()
        },
        specs,
    );
    behavior_digest(&mut fleet, &mut envs, 12);
    let ring_frames = fleet.tenant_flight(2).unwrap().frames();
    let a = fleet.snapshot(2).expect("recorder enabled");
    // Huge cooldown does not block a second explicit snapshot.
    let b = fleet
        .snapshot(2)
        .expect("cooldown must not block snapshots");
    assert_eq!(a.trigger, FlightTrigger::Snapshot);
    assert_eq!(a.frames, ring_frames);
    assert_eq!(a.frames.len(), 8, "ring capacity bounds the window");
    assert_eq!(a.frames_digest(), b.frames_digest());
    assert_eq!(fleet.flight_health().incidents_dumped, 2);

    // Recorder disabled ⇒ snapshot is a no-op.
    let (_, specs) = three_tenants(ServeConfig::default());
    let mut off = FleetRuntime::new(FleetConfig::default(), specs);
    assert!(off.snapshot(0).is_none());
}

/// The telemetry merge law survives the recorder: a tenant's
/// whole-life telemetry (live runtime merged with reload-retired
/// archives) is identical between a recorder-on and a recorder-off
/// fleet, even across panic → quarantine → reload cycles.
#[test]
fn telemetry_merge_law_holds_with_recorder_enabled() {
    let plan = InfraChaosPlan::new().tenant_panic(Window::new(3, 20), TenantSel::One(0), 1.0);
    let cfg_base = FleetConfig {
        supervisor: SupervisorConfig {
            backoff_base: 1,
            backoff_max: 2,
            ..Default::default()
        },
        seed: 13,
        ..Default::default()
    };
    let mut telems = Vec::new();
    for flight in [None, Some(FlightConfig::default())] {
        let (mut envs, specs) = three_tenants(ServeConfig::default());
        let mut fleet = FleetRuntime::new(FleetConfig { flight, ..cfg_base }, specs);
        fleet.set_infra_chaos(plan.clone()).unwrap();
        behavior_digest(&mut fleet, &mut envs, 40);
        assert!(
            fleet.tenant_stats(0).reload_attempts > 0,
            "the run must exercise the archive-merge path"
        );
        telems.push(
            (0..3)
                .map(|t| fleet.tenant_telemetry(t))
                .collect::<Vec<_>>(),
        );
    }
    for (off, on) in telems[0].iter().zip(&telems[1]) {
        assert_eq!(off.steps(), on.steps());
        assert_eq!(off.decisions(), on.decisions());
        assert_eq!(off.fallback_decisions(), on.fallback_decisions());
        assert_eq!(off.degraded_steps(), on.degraded_steps());
        assert_eq!(off.per_agent_fallbacks(), on.per_agent_fallbacks());
        assert_eq!(off.per_agent_causes(), on.per_agent_causes());
    }
}

/// The exposition snapshot is a pure read that reflects fleet state:
/// Prometheus names are escaped, per-tenant series carry the tenant
/// label, and the JSON summary mirrors the health counters.
#[test]
fn exposition_reports_flight_health_and_escaped_series() {
    let (mut envs, specs) = three_tenants(ServeConfig::default());
    let mut fleet = FleetRuntime::new(
        FleetConfig {
            seed: 3,
            flight: Some(FlightConfig::default()),
            ..Default::default()
        },
        specs,
    );
    behavior_digest(&mut fleet, &mut envs, 10);
    let before = fleet.flight_health();
    let exp = fleet.exposition();
    assert_eq!(fleet.flight_health(), before, "exposition is a pure read");
    assert!(exp.prometheus.contains("fleet_flight_frames_recorded 30"));
    assert!(exp
        .prometheus
        .contains("fleet_tenant_steps{tenant=\"tenant-0\"} 10"));
    assert!(exp.prometheus.contains("# TYPE fleet_steps counter"));
    assert!(
        !exp.prometheus.contains("fleet.steps"),
        "raw dotted names must never leak into the page"
    );
    let flight = exp.summary.get("flight").unwrap();
    assert_eq!(flight.get_num("frames_recorded"), Some(30.0));
    assert_eq!(flight.get("enabled"), Some(&Json::Bool(true)));
    let tenants = match exp.summary.get("tenants") {
        Some(Json::Arr(a)) => a,
        other => panic!("tenants must be an array, got {other:?}"),
    };
    assert_eq!(tenants.len(), 3);
    assert_eq!(tenants[1].get_str("name"), Some("tenant-1"));
    assert_eq!(tenants[1].get_num("steps"), Some(10.0));
}
