//! Admission control & overload robustness: the brownout ladder must
//! be invisible without overload (bit-identical, pinned against the
//! pre-admission fleet), deterministic under replay, and must never
//! violate a tenant's max-shed-rate SLA — checked both by targeted
//! tests and a property test over random load programs.

use pairuplight::{PairUpLight, PairUpLightConfig};
use proptest::prelude::*;
use tsc_serve::{
    Admission, AdmissionConfig, FleetConfig, FleetRuntime, LoadPlan, ServeConfig, ServeError,
    ServedBy, ServiceLevel, SlaClass, TenantSel, TenantSpec,
};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, TscEnv, Window};

fn tiny_env(seed_pattern: FlowPattern, horizon: u32) -> TscEnv {
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 150.0,
    })
    .unwrap();
    let f = flows(&grid, seed_pattern, &PatternConfig::default()).unwrap();
    let scenario = grid.scenario("admission-test", f).unwrap();
    TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: horizon,
        },
        0,
    )
    .unwrap()
}

fn small_cfg() -> PairUpLightConfig {
    PairUpLightConfig {
        hidden: 16,
        lstm_hidden: 16,
        ..Default::default()
    }
}

fn three_tenants(serve_cfg: ServeConfig) -> (Vec<TscEnv>, Vec<TenantSpec>) {
    let patterns = [FlowPattern::One, FlowPattern::Three, FlowPattern::Five];
    let mut envs = Vec::new();
    let mut specs = Vec::new();
    for (i, &p) in patterns.iter().enumerate() {
        let env = tiny_env(p, 2000);
        let model = PairUpLight::new(&env, small_cfg());
        specs.push(TenantSpec {
            name: format!("tenant-{i}"),
            snapshot: model.policy_snapshot(),
            serve_cfg,
            checkpoint: None,
            sla: Default::default(),
        });
        envs.push(env);
    }
    (envs, specs)
}

/// Folds the externally observable behavior of a clean fleet run —
/// actions, supervisor states, who served — exactly as a pre-admission
/// caller would have seen it (deliberately NOT `FleetStep::digest`,
/// which may grow fields).
fn behavior_digest(fleet: &mut FleetRuntime, envs: &mut [TscEnv], steps: usize) -> u64 {
    let mut obs: Vec<_> = envs
        .iter_mut()
        .enumerate()
        .map(|(i, env)| env.reset(100 + i as u64))
        .collect();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mix = |byte: u64, h: &mut u64| {
        *h ^= byte;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for _ in 0..steps {
        let views: Vec<&[_]> = obs.iter().map(|o| o.as_slice()).collect();
        let out = fleet.step(&views).unwrap();
        for (i, (t, env)) in out.tenants.iter().zip(envs.iter_mut()).enumerate() {
            mix(t.state.index() as u64, &mut h);
            mix(u64::from(t.panicked), &mut h);
            for &a in &t.actions {
                mix(a as u64, &mut h);
            }
            obs[i] = env.step(&t.actions).unwrap().obs;
        }
    }
    h
}

/// Acceptance pin: with no overload and the default SLA config, the
/// fleet's output is bit-identical to the pre-admission fleet. The
/// constant below was produced by this exact scenario on the tree
/// BEFORE the admission layer and the zero-degradation swap landed —
/// it must never move.
#[test]
fn default_config_is_bit_identical_to_pre_admission_fleet() {
    let (mut envs, specs) = three_tenants(ServeConfig::default());
    let mut fleet = FleetRuntime::new(
        FleetConfig {
            seed: 77,
            ..Default::default()
        },
        specs,
    );
    let digest = behavior_digest(&mut fleet, &mut envs, 30);
    println!("clean-fleet behavior digest: {digest:#018x}");
    assert_eq!(digest, PRE_ADMISSION_DIGEST);
}

/// Captured from the pre-PR tree (see
/// `default_config_is_bit_identical_to_pre_admission_fleet`).
const PRE_ADMISSION_DIGEST: u64 = 0xfd54_7cd7_9367_d04f;

/// With admission *enabled* but the offered load inside capacity,
/// every step is Full service and the output digest still matches the
/// pre-admission pin — the layer is invisible until it must act.
#[test]
fn in_capacity_admission_is_invisible() {
    let (mut envs, specs) = three_tenants(ServeConfig::default());
    let mut fleet = FleetRuntime::new(
        FleetConfig {
            seed: 77,
            // 3 tenants × 4 agents × 1 offered = 12 ≤ 100.
            admission: Some(AdmissionConfig { capacity: 100 }),
            ..Default::default()
        },
        specs,
    );
    let digest = behavior_digest(&mut fleet, &mut envs, 30);
    assert_eq!(digest, PRE_ADMISSION_DIGEST);
    let adm = fleet.admission().unwrap();
    for t in 0..3 {
        assert_eq!(adm.shed_steps(t), 0);
        assert_eq!(fleet.tenant_stats(t).brownout_steps, 0);
    }
}

/// Drives a fleet under an explicit load plan; returns the folded
/// step digest and every tenant's (level, served_by, actions) trace.
#[allow(clippy::type_complexity)]
fn drive_loaded(
    fleet: &mut FleetRuntime,
    envs: &mut [TscEnv],
    plan: &LoadPlan,
    seed: u64,
    steps: usize,
) -> (u64, Vec<Vec<(ServiceLevel, ServedBy, Vec<usize>)>>) {
    let mut obs: Vec<_> = envs
        .iter_mut()
        .enumerate()
        .map(|(i, env)| env.reset(100 + i as u64))
        .collect();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut traces = vec![Vec::new(); envs.len()];
    for step in 0..steps {
        let offered = plan.offered_all(seed, step as u64, envs.len());
        let views: Vec<&[_]> = obs.iter().map(|o| o.as_slice()).collect();
        let out = fleet.step_with_load(&views, &offered).unwrap();
        digest = (digest ^ out.digest()).wrapping_mul(0x0000_0100_0000_01b3);
        for (i, (t, env)) in out.tenants.iter().zip(envs.iter_mut()).enumerate() {
            traces[i].push((t.level, t.served_by, t.actions.clone()));
            obs[i] = env.step(&t.actions).unwrap().obs;
        }
    }
    (digest, traces)
}

/// Overload engages the brownout ladder in priority order: the gold
/// tenant keeps full service, lower tenants brown out, held steps
/// hold the previous plan verbatim, and the whole run replays
/// bit-for-bit from `(seed, plan)`.
#[test]
fn overload_browns_out_by_priority_and_replays_bit_for_bit() {
    let sla = |priority, max_shed_rate| SlaClass {
        priority,
        max_shed_rate,
        ..Default::default()
    };
    let build = || {
        let (envs, mut specs) = three_tenants(ServeConfig::default());
        specs[0].sla = sla(2, 0.0);
        specs[1].sla = sla(1, 0.0);
        specs[2].sla = sla(0, 0.9);
        let fleet = FleetRuntime::new(
            FleetConfig {
                seed: 13,
                // Gold at full service (4 agents × 4 offered = 16)
                // fits; silver only affords Standby (cost 2 of the
                // remaining 3); bronze cannot (2 > 1) and its SLA
                // allows shedding.
                admission: Some(AdmissionConfig { capacity: 19 }),
                ..Default::default()
            },
            specs,
        );
        (envs, fleet)
    };
    let plan = LoadPlan::new().phase(Window::new(10, 40), TenantSel::All, 4, 0);

    let (mut envs, mut fleet) = build();
    let (digest_a, traces) = drive_loaded(&mut fleet, &mut envs, &plan, 13, 50);

    // Before the surge everyone is Full.
    for trace in &traces {
        assert!(trace[..10]
            .iter()
            .all(|(level, _, _)| *level == ServiceLevel::Full));
    }
    // During the surge: gold keeps full service, bronze browns out
    // every step and gets shed at least once (its SLA allows it).
    let surge = 10..40;
    assert!(traces[0][surge.clone()]
        .iter()
        .all(|(level, _, _)| *level == ServiceLevel::Full));
    assert!(traces[2][surge.clone()]
        .iter()
        .all(|(level, _, _)| level.browned_out()));
    assert!(traces[2][surge.clone()]
        .iter()
        .any(|(level, _, _)| *level == ServiceLevel::Shed));
    // Held steps (decimated off-steps, shed steps) hold the previous
    // plan verbatim.
    for trace in &traces {
        for (i, (_, served_by, actions)) in trace.iter().enumerate() {
            if *served_by == ServedBy::Held {
                assert!(i > 0, "nothing to hold on the first step");
                assert_eq!(actions, &trace[i - 1].2, "held step holds the plan");
            }
        }
    }
    // After the surge the ladder releases: everyone Full again.
    for trace in &traces {
        assert!(trace[45..]
            .iter()
            .all(|(level, _, _)| *level == ServiceLevel::Full));
    }
    // Zero-shed SLAs were honored outright.
    let adm = fleet.admission().unwrap();
    assert_eq!(adm.shed_steps(0), 0);
    assert_eq!(adm.shed_steps(1), 0);
    assert!(fleet.tenant_stats(2).shed_steps > 0);
    assert_eq!(
        fleet.tenant_stats(2).shed_steps,
        adm.shed_steps(2),
        "stats and controller agree"
    );

    // Bit-for-bit replay of the whole overloaded run.
    let (mut envs_b, mut fleet_b) = build();
    let (digest_b, _) = drive_loaded(&mut fleet_b, &mut envs_b, &plan, 13, 50);
    assert_eq!(digest_a, digest_b);

    // Admission telemetry landed in the tenant's merged view.
    let tel = fleet.tenant_telemetry(2);
    assert!(tel.shed_requests() > 0);
    assert!(tel.offered_requests() > tel.shed_requests());
    assert!(tel.steps_at(ServiceLevel::Full) >= 20);
}

/// `step_with_load` validates its shape, and without admission the
/// offered load is inert (bit-identical to plain `step`).
#[test]
fn offered_load_is_validated_and_inert_without_admission() {
    let (mut envs, specs) = three_tenants(ServeConfig::default());
    let mut fleet = FleetRuntime::new(FleetConfig::default(), specs);
    let obs0 = envs[0].reset(1);
    let obs1 = envs[1].reset(2);
    let obs2 = envs[2].reset(3);
    let views: Vec<&[_]> = vec![obs0.as_slice(), obs1.as_slice(), obs2.as_slice()];
    match fleet.step_with_load(&views, &[1, 1]) {
        Err(ServeError::OfferedLoadMismatch {
            got: 2,
            expected: 3,
        }) => {}
        other => panic!("expected OfferedLoadMismatch, got {other:?}"),
    }
    // No admission configured: a huge offered load changes nothing.
    let loaded = fleet.step_with_load(&views, &[1_000_000, 1_000_000, 1_000_000]);
    let loaded_digest = loaded.unwrap().digest();
    let (mut envs_b, specs_b) = three_tenants(ServeConfig::default());
    let mut plain = FleetRuntime::new(FleetConfig::default(), specs_b);
    let obs_b: Vec<_> = envs_b
        .iter_mut()
        .enumerate()
        .map(|(i, env)| env.reset(1 + i as u64))
        .collect();
    let views_b: Vec<&[_]> = obs_b.iter().map(|o| o.as_slice()).collect();
    assert_eq!(loaded_digest, plain.step(&views_b).unwrap().digest());
}

// ---------------------------------------------------------------------
// Satellite: property test — random load programs + SLA configs never
// violate a tenant's max shed rate, and the whole level sequence
// replays bit-for-bit from (seed, plan).
// ---------------------------------------------------------------------

const PROP_TENANTS: usize = 3;

#[derive(Debug, Clone)]
struct PhaseSpec {
    start: u32,
    len: u32,
    tenant: Option<usize>,
    base: u64,
    jitter: u64,
}

fn phase_strategy() -> impl Strategy<Value = PhaseSpec> {
    (
        0u32..80,
        1u32..80,
        prop_oneof![Just(None), (0..PROP_TENANTS).prop_map(Some)],
        0u64..40,
        0u64..10,
    )
        .prop_map(|(start, len, tenant, base, jitter)| PhaseSpec {
            start,
            len,
            tenant,
            base,
            jitter,
        })
}

fn sla_strategy() -> impl Strategy<Value = SlaClass> {
    (0u8..4, prop_oneof![Just(0.0), 0.05f64..0.9]).prop_map(|(priority, max_shed_rate)| SlaClass {
        priority,
        max_shed_rate,
        ..Default::default()
    })
}

fn build_plan(phases: &[PhaseSpec]) -> LoadPlan {
    phases.iter().fold(LoadPlan::new(), |plan, p| {
        plan.phase(
            Window::new(p.start, p.start.saturating_add(p.len)),
            p.tenant.map_or(TenantSel::All, TenantSel::One),
            p.base,
            p.jitter,
        )
    })
}

/// Runs a pure admission controller over the plan; returns the level
/// sequence and asserts the shed cap at every prefix.
fn run_admission(
    seed: u64,
    capacity: u64,
    classes: &[SlaClass],
    plan: &LoadPlan,
    steps: u64,
) -> Vec<Vec<ServiceLevel>> {
    let agents = [4usize, 9, 4];
    let mut adm = Admission::new(AdmissionConfig { capacity }, classes.to_vec(), seed);
    let mut levels = Vec::new();
    for step in 0..steps {
        let offered = plan.offered_all(seed, step, PROP_TENANTS);
        levels.push(adm.decide(step, &offered, &agents));
        for (t, class) in classes.iter().enumerate() {
            let ratio = adm.shed_steps(t) as f64 / adm.steps(t) as f64;
            assert!(
                ratio <= class.max_shed_rate + 1e-12,
                "tenant {t} shed ratio {ratio} exceeds cap {} at step {step}",
                class.max_shed_rate
            );
        }
    }
    levels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_load_never_violates_shed_caps_and_replays(
        phases in proptest::collection::vec(phase_strategy(), 0..5),
        classes in proptest::collection::vec(sla_strategy(), PROP_TENANTS),
        capacity in 1u64..200,
        seed in 0u64..1_000,
    ) {
        let plan = build_plan(&phases);
        let a = run_admission(seed, capacity, &classes, &plan, 120);
        let b = run_admission(seed, capacity, &classes, &plan, 120);
        prop_assert_eq!(a, b, "same (seed, plan, config) must replay bit-for-bit");
    }
}
