//! `serve_step` input-validation audit: malformed joint observations
//! must come back as typed [`ServeError`]s — never a panic, never
//! partial state mutation. A failed step must leave the runtime
//! serving exactly as if the bad call never happened.

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_serve::{ServeConfig, ServeError, ServeRuntime};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, TscEnv};

fn env(cols: usize, rows: usize) -> TscEnv {
    let grid = Grid::build(GridConfig {
        cols,
        rows,
        spacing: 150.0,
    })
    .unwrap();
    let f = flows(&grid, FlowPattern::One, &PatternConfig::default()).unwrap();
    let scenario = grid.scenario("serve-audit", f).unwrap();
    TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: 600,
        },
        0,
    )
    .unwrap()
}

fn runtime_for(env: &TscEnv) -> ServeRuntime {
    let model = PairUpLight::new(
        env,
        PairUpLightConfig {
            hidden: 16,
            lstm_hidden: 16,
            ..Default::default()
        },
    );
    ServeRuntime::new(model.policy_snapshot(), ServeConfig::default())
}

#[test]
fn wrong_agent_count_is_a_typed_error() {
    let mut small = env(2, 2);
    let big = env(3, 3);
    let mut serve = runtime_for(&small);
    let wrong = big.clone().reset(0);
    match serve.serve_step(&wrong) {
        Err(ServeError::AgentCountMismatch {
            got: 9,
            expected: 4,
        }) => {}
        other => panic!("expected AgentCountMismatch, got {other:?}"),
    }
    // Empty input is just another count mismatch, not a panic.
    assert!(matches!(
        serve.serve_step(&[]),
        Err(ServeError::AgentCountMismatch {
            got: 0,
            expected: 4
        })
    ));
    // The runtime is untouched: a correct step still serves.
    let obs = small.reset(0);
    assert!(serve.serve_step(&obs).is_ok());
}

#[test]
fn wrong_phase_count_is_a_typed_error_and_mutates_nothing() {
    let mut grid_env = env(2, 2);
    let mut serve = runtime_for(&grid_env);
    let obs = grid_env.reset(0);

    // Establish a healthy baseline trace first.
    let baseline = serve.serve_step(&obs).unwrap();

    // An observation claiming a different signal plan than the policy
    // topology — the signature of cross-wiring a tenant to the wrong
    // grid.
    let mut tampered = obs.clone();
    let real = tampered[2].num_phases;
    tampered[2].num_phases = 2;
    assert_ne!(real, 2, "tampering must actually change the count");
    match serve.serve_step(&tampered) {
        Err(ServeError::PhaseCountMismatch {
            agent: 2,
            got: 2,
            expected,
        }) => assert_eq!(expected, real),
        other => panic!("expected PhaseCountMismatch, got {other:?}"),
    }
    // Telemetry did not count the rejected step...
    assert_eq!(serve.telemetry().steps(), 1);

    // ...and serving state (LSTM, messages, fallback hold counters)
    // was not advanced: a fresh runtime replaying the same two good
    // steps produces identical actions.
    let second = serve.serve_step(&obs).unwrap();
    let mut mirror = runtime_for(&grid_env);
    assert_eq!(mirror.serve_step(&obs).unwrap().actions, baseline.actions);
    assert_eq!(
        mirror.serve_step(&obs).unwrap().actions,
        second.actions,
        "rejected call must not have advanced any state"
    );
}

#[test]
fn error_messages_name_the_offender() {
    let text = ServeError::PhaseCountMismatch {
        agent: 3,
        got: 6,
        expected: 4,
    }
    .to_string();
    assert!(text.contains("agent 3"), "{text}");
    assert!(text.contains('6') && text.contains('4'), "{text}");
    let text = ServeError::TenantCountMismatch {
        got: 2,
        expected: 5,
    }
    .to_string();
    assert!(text.contains('2') && text.contains('5'), "{text}");
}
