//! Graceful degradation and the steady-state allocation probe:
//! deadline overruns (injected delays, so deterministic) must hand
//! affected intersections to MaxPressure without panicking, a staged
//! hot reload must be invisible (the old snapshot serves at full
//! quality until commit — the double-buffered swap), and the tape-free
//! hot loop must stop allocating once its buffers have warmed up.

use std::time::Duration;

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_baselines::MaxPressureController;
use tsc_serve::{DegradeReason, ServeConfig, ServeError, ServeRuntime};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{Controller, EnvConfig, SimConfig, TscEnv};

fn tiny_env(horizon: u32) -> TscEnv {
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 150.0,
    })
    .unwrap();
    let f = flows(&grid, FlowPattern::Five, &PatternConfig::default()).unwrap();
    let scenario = grid.scenario("serve-degrade", f).unwrap();
    TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: horizon,
        },
        0,
    )
    .unwrap()
}

fn small_cfg() -> PairUpLightConfig {
    PairUpLightConfig {
        hidden: 16,
        lstm_hidden: 16,
        ..Default::default()
    }
}

#[test]
fn deadline_overrun_falls_back_to_max_pressure_and_recovers() {
    let mut env = tiny_env(700);
    let model = PairUpLight::new(&env, small_cfg());
    let mut serve = ServeRuntime::new(
        model.policy_snapshot(),
        ServeConfig {
            deadline: Some(Duration::from_millis(50)),
            fallback_min_hold: 2,
            ..Default::default()
        },
    );
    // Mirror of the runtime's internal warm-standby fallback: fed the
    // same observation sequence, it must predict the degraded actions.
    let mut mirror = MaxPressureController::new(2);
    mirror.reset();

    let mut obs = env.reset(7);

    // Healthy step: within budget, policy answers.
    let healthy = serve.serve_step(&obs).unwrap();
    let _ = mirror.decide(&obs);
    assert!(healthy.degraded.is_none());
    assert!(healthy.fell_back.iter().all(|&f| !f));
    obs = env.step(&healthy.actions).unwrap().obs;

    // Injected 100 ms delay against a 50 ms budget: every agent must
    // fall back to exactly the MaxPressure actions, without panicking.
    serve.inject_delay(Some(Duration::from_millis(100)));
    let degraded = serve.serve_step(&obs).unwrap();
    let want = mirror.decide(&obs);
    assert_eq!(degraded.degraded, Some(DegradeReason::DeadlineOverrun));
    assert!(degraded.fell_back.iter().all(|&f| f));
    assert_eq!(degraded.actions, want, "fallback must equal MaxPressure");
    assert!(degraded.latency >= Duration::from_millis(100));
    obs = env.step(&degraded.actions).unwrap().obs;

    // Clearing the injection recovers the policy path immediately.
    serve.inject_delay(None);
    let recovered = serve.serve_step(&obs).unwrap();
    let _ = mirror.decide(&obs);
    assert!(recovered.degraded.is_none());
    assert!(recovered.fell_back.iter().all(|&f| !f));

    let t = serve.telemetry();
    assert_eq!(t.steps(), 3);
    assert_eq!(t.degraded_steps(), 1);
    assert_eq!(t.fallback_decisions(), env.num_agents() as u64);
    assert!(t.per_agent_fallbacks().iter().all(|&c| c == 1));
    assert!((t.fallback_rate() - 1.0 / 3.0).abs() < 1e-12);
}

#[test]
fn per_agent_deadline_degrades_only_the_late_agents() {
    let cfg = PairUpLightConfig {
        parameter_sharing: false,
        ..small_cfg()
    };
    let env = tiny_env(700);
    let model = PairUpLight::new(&env, cfg);
    let mut serve = ServeRuntime::new(
        model.policy_snapshot(),
        ServeConfig {
            deadline: Some(Duration::from_millis(50)),
            fallback_min_hold: 2,
            ..Default::default()
        },
    );
    let obs = env.clone().reset(7);
    // 100 ms per-agent delay against a 50 ms budget: agent 0 clears the
    // pre-check and computes; the budget is spent by its sleep, so
    // agents 1.. fall back with per-agent accounting.
    serve.inject_delay(Some(Duration::from_millis(100)));
    let step = serve.serve_step(&obs).unwrap();
    assert_eq!(step.degraded, Some(DegradeReason::DeadlineOverrun));
    assert!(!step.fell_back[0], "agent 0 was within budget");
    assert!(step.fell_back[1..].iter().all(|&f| f));
    let t = serve.telemetry();
    assert_eq!(t.fallback_decisions(), env.num_agents() as u64 - 1);
    assert_eq!(t.per_agent_fallbacks()[0], 0);
    assert!(t.per_agent_fallbacks()[1..].iter().all(|&c| c == 1));
}

#[test]
fn staged_reload_is_invisible_and_commit_swaps_the_policy() {
    let mut env = tiny_env(700);
    let model = PairUpLight::new(&env, small_cfg());
    let path = std::env::temp_dir().join("tsc_serve_degrade_reload.ckpt");
    model.save_checkpoint(&path, 0).unwrap();

    let mut serve =
        ServeRuntime::from_checkpoint(&env, small_cfg(), ServeConfig::default(), &path).unwrap();
    // Mirror of the serving path without any reload traffic: steps
    // while a reload is staged must be bit-identical to it.
    let mut mirror = ServeRuntime::new(model.policy_snapshot(), ServeConfig::default());

    let mut obs = env.reset(11);
    let before = serve.serve_step(&obs).unwrap();
    assert_eq!(before.actions, mirror.serve_step(&obs).unwrap().actions);
    assert!(before.degraded.is_none());
    obs = env.step(&before.actions).unwrap().obs;

    // Stage a reload mid-run: the old snapshot keeps serving at full
    // quality — zero degradation, bit-identical to the mirror.
    serve.begin_reload(&path).unwrap();
    assert!(serve.reload_in_flight());
    let during = serve.serve_step(&obs).unwrap();
    assert!(during.degraded.is_none(), "staged reload degrades nothing");
    assert!(during.fell_back.iter().all(|&f| !f));
    assert_eq!(during.actions, mirror.serve_step(&obs).unwrap().actions);
    obs = env.step(&during.actions).unwrap().obs;

    // Committing swaps the weights in and resets recurrent state: the
    // next step must match a fresh runtime on the same weights.
    serve.commit_reload().unwrap();
    assert!(!serve.reload_in_flight());
    let after = serve.serve_step(&obs).unwrap();
    assert!(after.degraded.is_none());
    let mut fresh = ServeRuntime::new(model.policy_snapshot(), ServeConfig::default());
    assert_eq!(after.actions, fresh.serve_step(&obs).unwrap().actions);

    // Reload bookkeeping errors are typed.
    assert!(matches!(
        serve.commit_reload(),
        Err(ServeError::NoReloadPending)
    ));
    serve.begin_reload(&path).unwrap();
    assert!(matches!(
        serve.begin_reload(&path),
        Err(ServeError::ReloadInFlight)
    ));
    assert!(serve.abort_reload());
    assert!(!serve.reload_in_flight());
    std::fs::remove_file(&path).ok();
}

#[test]
fn steady_state_serving_does_not_allocate() {
    let mut env = tiny_env(1400);
    let model = PairUpLight::new(&env, small_cfg());
    let mut serve = ServeRuntime::new(model.policy_snapshot(), ServeConfig::default());
    let mut obs = env.reset(3);
    // Warm-up: first steps size the activation buffers.
    for _ in 0..3 {
        let step = serve.serve_step(&obs).unwrap();
        obs = env.step(&step.actions).unwrap().obs;
    }
    let baseline = serve.alloc_events();
    for _ in 0..100 {
        let step = serve.serve_step(&obs).unwrap();
        obs = env.step(&step.actions).unwrap().obs;
    }
    assert_eq!(
        serve.alloc_events(),
        baseline,
        "tape-free hot loop must not allocate tensors in steady state"
    );
    assert_eq!(serve.telemetry().steps(), 103);
}

#[test]
fn controller_impl_runs_a_full_episode() {
    let mut env = tiny_env(700);
    let model = PairUpLight::new(&env, small_cfg());
    let mut serve = ServeRuntime::new(model.policy_snapshot(), ServeConfig::default());
    let stats = env.run_episode(&mut serve, 5).unwrap();
    assert!(stats.spawned > 0);
    assert_eq!(serve.telemetry().steps(), 100);
}
