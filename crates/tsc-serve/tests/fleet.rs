//! Fleet supervision under infrastructure chaos: crash isolation must
//! be bitwise (a faulty tenant never perturbs a healthy one), the
//! infra-chaos plan must obey the chaos engine's determinism
//! guarantees (empty plan == no plan; same seed+plan replays
//! bit-for-bit), and the quarantine → reload → recovery cycle must
//! complete — or stop retrying — exactly as configured.

use std::time::Duration;

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_baselines::MaxPressureController;
use tsc_serve::{
    FleetConfig, FleetRuntime, InfraChaosPlan, ServeConfig, ServeError, SupervisorConfig,
    TenantSel, TenantSpec, TenantState,
};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{Controller, EnvConfig, SimConfig, TscEnv, Window};

fn tiny_env(seed_pattern: FlowPattern, horizon: u32) -> TscEnv {
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 150.0,
    })
    .unwrap();
    let f = flows(&grid, seed_pattern, &PatternConfig::default()).unwrap();
    let scenario = grid.scenario("fleet-test", f).unwrap();
    TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: horizon,
        },
        0,
    )
    .unwrap()
}

fn small_cfg() -> PairUpLightConfig {
    PairUpLightConfig {
        hidden: 16,
        lstm_hidden: 16,
        ..Default::default()
    }
}

/// Three independent 2×2 tenants over distinct flow patterns.
fn three_tenants(serve_cfg: ServeConfig) -> (Vec<TscEnv>, Vec<TenantSpec>) {
    let patterns = [FlowPattern::One, FlowPattern::Three, FlowPattern::Five];
    let mut envs = Vec::new();
    let mut specs = Vec::new();
    for (i, &p) in patterns.iter().enumerate() {
        let env = tiny_env(p, 2000);
        let model = PairUpLight::new(&env, small_cfg());
        specs.push(TenantSpec {
            name: format!("tenant-{i}"),
            snapshot: model.policy_snapshot(),
            serve_cfg,
            checkpoint: None,
            sla: Default::default(),
        });
        envs.push(env);
    }
    (envs, specs)
}

/// Runs `fleet` for `steps` fleet steps, each tenant driving its own
/// environment (env `i` reset with seed `100 + i`); returns every
/// tenant's full action trace plus the folded step digests.
fn drive(
    fleet: &mut FleetRuntime,
    envs: &mut [TscEnv],
    steps: usize,
) -> (Vec<Vec<Vec<usize>>>, Vec<u64>) {
    let mut obs: Vec<_> = envs
        .iter_mut()
        .enumerate()
        .map(|(i, env)| env.reset(100 + i as u64))
        .collect();
    let mut traces = vec![Vec::new(); envs.len()];
    let mut digests = Vec::new();
    for _ in 0..steps {
        let views: Vec<&[_]> = obs.iter().map(|o| o.as_slice()).collect();
        let out = fleet.step(&views).unwrap();
        digests.push(out.digest());
        for (i, (t, env)) in out.tenants.iter().zip(envs.iter_mut()).enumerate() {
            traces[i].push(t.actions.clone());
            let step = env.step(&t.actions).unwrap();
            assert!(!step.done, "horizon outlives the test");
            obs[i] = step.obs;
        }
    }
    (traces, digests)
}

/// Tier-1 acceptance pin: a tenant whose policy panics on every step
/// serves exactly the warm-standby MaxPressure actions, while every
/// other tenant's output is bit-identical to a fleet without the
/// faulty tenant's faults. The process never aborts.
#[test]
fn panicking_tenant_degrades_to_max_pressure_and_is_bitwise_isolated() {
    let serve_cfg = ServeConfig::default();
    let plan = InfraChaosPlan::new().tenant_panic(Window::always(), TenantSel::One(1), 1.0);
    let cfg = FleetConfig {
        // Fast backoff so the whole retry budget burns within the run.
        supervisor: SupervisorConfig {
            backoff_base: 1,
            backoff_max: 2,
            ..Default::default()
        },
        seed: 5,
        ..Default::default()
    };

    let (mut envs_a, specs_a) = three_tenants(serve_cfg);
    let mut faulty = FleetRuntime::new(cfg, specs_a);
    faulty.set_infra_chaos(plan).unwrap();
    let (trace_a, _) = drive(&mut faulty, &mut envs_a, 40);

    let (mut envs_b, specs_b) = three_tenants(serve_cfg);
    let mut clean = FleetRuntime::new(cfg, specs_b);
    let (trace_b, _) = drive(&mut clean, &mut envs_b, 40);

    // Isolation: the healthy tenants never see the faults.
    assert_eq!(trace_a[0], trace_b[0], "tenant 0 unaffected");
    assert_eq!(trace_a[2], trace_b[2], "tenant 2 unaffected");

    // Degradation: the faulty tenant is exactly MaxPressure. The
    // mirror replays tenant 1's obs stream through a standalone
    // controller with the same min-hold.
    let mut mirror_env = tiny_env(FlowPattern::Three, 2000);
    let mut mirror = MaxPressureController::new(serve_cfg.fallback_min_hold.max(1));
    mirror.reset();
    let mut obs = mirror_env.reset(101);
    for (i, actions) in trace_a[1].iter().enumerate() {
        let want = mirror.decide(&obs);
        assert_eq!(actions, &want, "step {i}: faulty tenant == MaxPressure");
        obs = mirror_env.step(actions).unwrap().obs;
    }

    // The tenant ends quarantined with its reload budget spent (every
    // recovery attempt re-panics) and its panic count accounted.
    assert_eq!(faulty.tenant_state(1), TenantState::Quarantined);
    let stats = faulty.tenant_stats(1);
    assert!(stats.panics > 0);
    assert_eq!(
        stats.reload_attempts,
        u64::from(SupervisorConfig::default().retry_budget),
        "retries stop at the budget"
    );
    assert_eq!(faulty.tenant_state(0), TenantState::Healthy);
    assert_eq!(faulty.tenant_state(2), TenantState::Healthy);
}

/// Determinism pin 1: installing an empty plan is bit-identical to
/// never installing one.
#[test]
fn empty_plan_is_bit_identical_to_no_plan() {
    let cfg = FleetConfig::default();
    let (mut envs_a, specs_a) = three_tenants(ServeConfig::default());
    let mut without = FleetRuntime::new(cfg, specs_a);
    let (trace_a, digests_a) = drive(&mut without, &mut envs_a, 25);

    let (mut envs_b, specs_b) = three_tenants(ServeConfig::default());
    let mut with_empty = FleetRuntime::new(cfg, specs_b);
    with_empty.set_infra_chaos(InfraChaosPlan::new()).unwrap();
    let (trace_b, digests_b) = drive(&mut with_empty, &mut envs_b, 25);

    assert_eq!(digests_a, digests_b);
    assert_eq!(trace_a, trace_b);
}

/// Determinism pin 2: the same seed + plan replays bit-for-bit,
/// including mid-run supervisor churn from probabilistic panics.
#[test]
fn same_seed_and_plan_replays_bit_for_bit() {
    let plan = InfraChaosPlan::new()
        .tenant_panic(Window::new(3, 12), TenantSel::All, 0.35)
        .reload_corrupt(Window::always(), TenantSel::One(2), 0.5);
    let cfg = FleetConfig {
        supervisor: SupervisorConfig {
            backoff_base: 1,
            backoff_max: 4,
            probation_steps: 2,
            ..Default::default()
        },
        seed: 42,
        ..Default::default()
    };
    let run = || {
        let (mut envs, specs) = three_tenants(ServeConfig::default());
        let mut fleet = FleetRuntime::new(cfg, specs);
        fleet.set_infra_chaos(plan.clone()).unwrap();
        drive(&mut fleet, &mut envs, 35)
    };
    let (trace_a, digests_a) = run();
    let (trace_b, digests_b) = run();
    assert_eq!(digests_a, digests_b);
    assert_eq!(trace_a, trace_b);

    // A different seed must actually change the run (the plan has
    // probabilistic faults, so identical output would mean the seed
    // is dead).
    let other = {
        let (mut envs, specs) = three_tenants(ServeConfig::default());
        let mut fleet = FleetRuntime::new(FleetConfig { seed: 43, ..cfg }, specs);
        fleet.set_infra_chaos(plan).unwrap();
        drive(&mut fleet, &mut envs, 35)
    };
    assert_ne!(digests_a, other.1, "seed drives the fault draws");
}

/// A single injected panic quarantines the tenant; the checkpoint
/// reload brings it back through Recovering to Healthy, with recovery
/// latency and breaker-close accounting.
#[test]
fn quarantined_tenant_reloads_and_recovers() {
    let dir = std::env::temp_dir().join(format!("fleet-recover-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("tenant.ckpt");
    let env = tiny_env(FlowPattern::One, 2000);
    let model = PairUpLight::new(&env, small_cfg());
    model.save_checkpoint(&ckpt, 0).unwrap();

    let mut fleet = FleetRuntime::new(
        FleetConfig {
            supervisor: SupervisorConfig {
                backoff_base: 1,
                backoff_max: 2,
                probation_steps: 2,
                ..Default::default()
            },
            seed: 9,
            ..Default::default()
        },
        vec![TenantSpec {
            name: "solo".into(),
            snapshot: model.policy_snapshot(),
            serve_cfg: ServeConfig::default(),
            checkpoint: Some(ckpt.clone()),
            sla: Default::default(),
        }],
    );
    // Exactly one panic, at step 0.
    fleet
        .set_infra_chaos(InfraChaosPlan::new().tenant_panic(
            Window::new(0, 1),
            TenantSel::One(0),
            1.0,
        ))
        .unwrap();

    let mut envs = vec![env];
    drive(&mut fleet, &mut envs, 20);

    assert_eq!(fleet.tenant_state(0), TenantState::Healthy);
    let stats = fleet.tenant_stats(0);
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.quarantines, 1);
    assert_eq!(stats.reload_attempts, 1);
    assert_eq!(stats.reload_failures, 0);
    assert_eq!(stats.recoveries, 1);
    assert!(stats.recovery_ticks_total > 0, "recovery latency recorded");
    assert_eq!(stats.breaker_closes, 1);
    assert!(stats.standby_steps > 0 && stats.standby_steps < stats.steps);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite regression: a tenant whose checkpoint is permanently
/// corrupt burns its whole retry budget, then stays quarantined
/// forever — no hot-looping, no further reload attempts.
#[test]
fn permanently_corrupt_checkpoint_stays_quarantined_after_budget() {
    let dir = std::env::temp_dir().join(format!("fleet-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("garbage.ckpt");
    std::fs::write(&ckpt, b"not a checkpoint at all").unwrap();

    let env = tiny_env(FlowPattern::One, 2000);
    let model = PairUpLight::new(&env, small_cfg());
    let budget = 2u32;
    let mut fleet = FleetRuntime::new(
        FleetConfig {
            supervisor: SupervisorConfig {
                backoff_base: 1,
                backoff_max: 2,
                retry_budget: budget,
                ..Default::default()
            },
            seed: 1,
            ..Default::default()
        },
        vec![TenantSpec {
            name: "doomed".into(),
            snapshot: model.policy_snapshot(),
            serve_cfg: ServeConfig::default(),
            checkpoint: Some(ckpt.clone()),
            sla: Default::default(),
        }],
    );
    fleet
        .set_infra_chaos(InfraChaosPlan::new().tenant_panic(
            Window::new(0, 1),
            TenantSel::One(0),
            1.0,
        ))
        .unwrap();

    let mut envs = vec![env];
    drive(&mut fleet, &mut envs, 30);
    assert_eq!(fleet.tenant_state(0), TenantState::Quarantined);
    let attempts_after_burnout = fleet.tenant_stats(0).reload_attempts;
    assert_eq!(attempts_after_burnout, u64::from(budget));
    assert_eq!(fleet.tenant_stats(0).reload_failures, u64::from(budget));

    // Another long stretch must not add a single attempt.
    drive(&mut fleet, &mut envs, 30);
    assert_eq!(
        fleet.tenant_stats(0).reload_attempts,
        attempts_after_burnout
    );
    assert_eq!(fleet.tenant_state(0), TenantState::Quarantined);
    std::fs::remove_dir_all(&dir).ok();
}

/// Latency spikes against a deadline trip the breaker (Degraded, not
/// Quarantined); once the spike window passes, backoff + probation
/// close it again.
#[test]
fn deadline_spikes_trip_and_then_close_the_breaker() {
    let env = tiny_env(FlowPattern::One, 2000);
    let model = PairUpLight::new(&env, small_cfg());
    let mut fleet = FleetRuntime::new(
        FleetConfig {
            supervisor: SupervisorConfig {
                window: 4,
                min_samples: 2,
                trip_fault_rate: 0.5,
                backoff_base: 2,
                backoff_max: 4,
                probation_steps: 2,
                ..Default::default()
            },
            seed: 3,
            ..Default::default()
        },
        vec![TenantSpec {
            name: "spiky".into(),
            snapshot: model.policy_snapshot(),
            serve_cfg: ServeConfig {
                deadline: Some(Duration::from_millis(50)),
                ..Default::default()
            },
            checkpoint: None,
            sla: Default::default(),
        }],
    );
    // 200 ms stalls against a 50 ms deadline: every spiked step is a
    // deterministic overrun.
    fleet
        .set_infra_chaos(InfraChaosPlan::new().latency_spike(
            Window::new(0, 4),
            TenantSel::One(0),
            200_000,
            1.0,
        ))
        .unwrap();

    let mut envs = vec![env];
    drive(&mut fleet, &mut envs, 25);
    let stats = fleet.tenant_stats(0);
    assert!(stats.breaker_trips >= 1, "spikes tripped the breaker");
    assert!(stats.soft_faults >= 2);
    assert_eq!(stats.panics, 0, "overruns degrade, never quarantine");
    assert_eq!(stats.quarantines, 0);
    assert_eq!(fleet.tenant_state(0), TenantState::Healthy);
    assert!(stats.breaker_closes >= 1, "probation closed it again");
}

/// Fleet-level input validation is typed, and an out-of-range chaos
/// target is rejected before the plan is installed.
#[test]
fn fleet_errors_are_typed() {
    let (mut envs, specs) = three_tenants(ServeConfig::default());
    let mut fleet = FleetRuntime::new(FleetConfig::default(), specs);
    let obs0 = envs[0].reset(1);
    let short: Vec<&[_]> = vec![obs0.as_slice()];
    match fleet.step(&short) {
        Err(ServeError::TenantCountMismatch {
            got: 1,
            expected: 3,
        }) => {}
        other => panic!("expected TenantCountMismatch, got {other:?}"),
    }
    let bad = InfraChaosPlan::new().tenant_panic(Window::always(), TenantSel::One(7), 1.0);
    match fleet.set_infra_chaos(bad) {
        Err(ServeError::InvalidInfraChaos {
            tenant: 7,
            tenants: 3,
        }) => {}
        other => panic!("expected InvalidInfraChaos, got {other:?}"),
    }
}

/// Acceptance pin: reload storms cost **zero degraded steps**. The
/// double-buffered swap serves the old policy while each staged
/// checkpoint validates, so a storm of hot reloads produces zero
/// `ReloadInFlight` fallbacks, counts its swaps, and never touches
/// the breaker — operator-induced churn is not a tenant fault.
#[test]
fn reload_storm_swaps_with_zero_degraded_steps() {
    let dir = std::env::temp_dir().join(format!("fleet-storm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("storm.ckpt");
    let env = tiny_env(FlowPattern::One, 2000);
    let model = PairUpLight::new(&env, small_cfg());
    model.save_checkpoint(&ckpt, 0).unwrap();
    let mut fleet = FleetRuntime::new(
        FleetConfig {
            seed: 2,
            ..Default::default()
        },
        vec![TenantSpec {
            name: "stormy".into(),
            snapshot: model.policy_snapshot(),
            serve_cfg: ServeConfig::default(),
            checkpoint: Some(ckpt.clone()),
            sla: Default::default(),
        }],
    );
    fleet
        .set_infra_chaos(InfraChaosPlan::new().reload_storm(
            Window::new(0, 20),
            TenantSel::One(0),
            4,
        ))
        .unwrap();
    let mut envs = vec![env];
    drive(&mut fleet, &mut envs, 25);
    let telemetry = fleet.tenant_telemetry(0);
    assert_eq!(
        telemetry.fallbacks_for(tsc_serve::DegradeReason::ReloadInFlight),
        0,
        "a staged reload never degrades a step"
    );
    assert_eq!(telemetry.degraded_steps(), 0, "the storm was invisible");
    let stats = fleet.tenant_stats(0);
    assert!(
        stats.hot_swaps >= 4,
        "the storm's reloads were swapped live"
    );
    assert_eq!(stats.breaker_trips, 0);
    assert_eq!(fleet.tenant_state(0), TenantState::Healthy);
    std::fs::remove_dir_all(&dir).ok();
}
