//! Property: `ServeTelemetry::merge` is exactly concatenation. Fleet
//! aggregation leans on this — a tenant's lifetime telemetry is the
//! merge of every runtime retired by recovery reloads, and it must be
//! indistinguishable from one runtime having recorded the whole
//! stream.

use std::time::Duration;

use proptest::prelude::*;
use tsc_serve::{DegradeReason, ServeTelemetry, ServiceLevel};

const AGENTS: usize = 3;

/// One recorded step: a latency, per-agent fallback causes, and the
/// admission outcome (service level + offered requests) when the step
/// went through admission control.
#[derive(Debug, Clone)]
struct Step {
    latency_us: u64,
    causes: Vec<Option<DegradeReason>>,
    admission: Option<(ServiceLevel, u64)>,
}

fn admission_strategy() -> impl Strategy<Value = Option<(ServiceLevel, u64)>> {
    prop_oneof![
        1 => Just(None),
        4 => (
            prop_oneof![
                Just(ServiceLevel::Full),
                Just(ServiceLevel::Degraded),
                Just(ServiceLevel::Standby),
                Just(ServiceLevel::Shed),
            ],
            1u64..200,
        )
            .prop_map(Some),
    ]
}

fn cause_strategy() -> impl Strategy<Value = Option<DegradeReason>> {
    prop_oneof![
        3 => Just(None),
        1 => Just(Some(DegradeReason::DeadlineOverrun)),
        1 => Just(Some(DegradeReason::ReloadInFlight)),
        1 => Just(Some(DegradeReason::SensorHealth)),
        1 => Just(Some(DegradeReason::CommsHealth)),
    ]
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (
        1u64..2_000_000,
        proptest::collection::vec(cause_strategy(), AGENTS),
        admission_strategy(),
    )
        .prop_map(|(latency_us, causes, admission)| Step {
            latency_us,
            causes,
            admission,
        })
}

fn record_all(t: &mut ServeTelemetry, steps: &[Step]) {
    for s in steps {
        let degraded = s.causes.iter().any(|c| c.is_some());
        t.record(Duration::from_micros(s.latency_us), &s.causes, degraded);
        if let Some((level, offered)) = s.admission {
            t.record_admission(level, offered);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recording a stream in two halves and merging equals one
    /// telemetry recording the concatenation — every counter, every
    /// per-agent breakdown, and every percentile of the merged
    /// histogram.
    #[test]
    fn merge_of_halves_equals_concatenated_recording(
        first in proptest::collection::vec(step_strategy(), 0..40),
        second in proptest::collection::vec(step_strategy(), 0..40),
    ) {
        let mut left = ServeTelemetry::new(AGENTS);
        record_all(&mut left, &first);
        let mut right = ServeTelemetry::new(AGENTS);
        record_all(&mut right, &second);
        left.merge(&right);

        let mut whole = ServeTelemetry::new(AGENTS);
        record_all(&mut whole, &first);
        record_all(&mut whole, &second);

        prop_assert_eq!(left.steps(), whole.steps());
        prop_assert_eq!(left.decisions(), whole.decisions());
        prop_assert_eq!(left.fallback_decisions(), whole.fallback_decisions());
        prop_assert_eq!(left.degraded_steps(), whole.degraded_steps());
        prop_assert_eq!(left.per_agent_fallbacks(), whole.per_agent_fallbacks());
        prop_assert_eq!(left.per_agent_causes(), whole.per_agent_causes());
        for reason in DegradeReason::ALL {
            prop_assert_eq!(left.fallbacks_for(reason), whole.fallbacks_for(reason));
        }

        // Admission counters are plain sums, so merge == concatenation
        // must hold exactly — including the derived shed rate.
        prop_assert_eq!(left.level_steps(), whole.level_steps());
        for level in ServiceLevel::ALL {
            prop_assert_eq!(left.steps_at(level), whole.steps_at(level));
        }
        prop_assert_eq!(left.offered_requests(), whole.offered_requests());
        prop_assert_eq!(left.shed_requests(), whole.shed_requests());
        prop_assert_eq!(left.shed_rate().to_bits(), whole.shed_rate().to_bits());

        // Histogram agreement: identical bucket contents, so identical
        // percentiles at every probed quantile and exact extrema.
        prop_assert_eq!(left.latency_histogram().buckets(), whole.latency_histogram().buckets());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(left.percentile_us(q), whole.percentile_us(q));
        }
        prop_assert_eq!(left.min_us(), whole.min_us());
        prop_assert_eq!(left.max_us(), whole.max_us());
        prop_assert_eq!(left.mean_us(), whole.mean_us());
    }

    /// Merge order is irrelevant for every exported statistic.
    #[test]
    fn merge_is_commutative_on_exports(
        first in proptest::collection::vec(step_strategy(), 1..30),
        second in proptest::collection::vec(step_strategy(), 1..30),
    ) {
        let mut a = ServeTelemetry::new(AGENTS);
        record_all(&mut a, &first);
        let mut b = ServeTelemetry::new(AGENTS);
        record_all(&mut b, &second);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);

        prop_assert_eq!(ab.steps(), ba.steps());
        prop_assert_eq!(ab.per_agent_fallbacks(), ba.per_agent_fallbacks());
        prop_assert_eq!(ab.latency_histogram().buckets(), ba.latency_histogram().buckets());
        prop_assert_eq!(ab.p99_us(), ba.p99_us());
        prop_assert_eq!(ab.level_steps(), ba.level_steps());
        prop_assert_eq!(ab.offered_requests(), ba.offered_requests());
        prop_assert_eq!(ab.shed_requests(), ba.shed_requests());
    }
}

/// Merging mismatched grid sizes must fail loudly, not corrupt.
#[test]
#[should_panic(expected = "different grid sizes")]
fn merge_rejects_mismatched_agent_counts() {
    let mut a = ServeTelemetry::new(2);
    let b = ServeTelemetry::new(3);
    a.merge(&b);
}
