//! Reload edge cases for the double-buffered snapshot swap: an
//! aborted staged reload must leave no trace (bit-identical to a
//! runtime that never saw reload traffic), a failed `commit_reload`
//! must mutate nothing, and the fleet's reload storm must not stage
//! reloads on a quarantined tenant — quarantine recovery owns that
//! tenant's checkpoint path exclusively.

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_obs::EventSink;
use tsc_serve::{
    FleetConfig, FleetRuntime, InfraChaosPlan, ServeConfig, ServeError, ServeRuntime,
    SupervisorConfig, TenantSel, TenantSpec, TenantState,
};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, TscEnv, Window};

fn tiny_env(horizon: u32) -> TscEnv {
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 150.0,
    })
    .unwrap();
    let f = flows(&grid, FlowPattern::Three, &PatternConfig::default()).unwrap();
    let scenario = grid.scenario("serve-reload", f).unwrap();
    TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: horizon,
        },
        0,
    )
    .unwrap()
}

fn small_cfg() -> PairUpLightConfig {
    PairUpLightConfig {
        hidden: 16,
        lstm_hidden: 16,
        ..Default::default()
    }
}

/// Staging a reload and then aborting it mid-serve leaves the runtime
/// bit-identical to a mirror that never saw any reload traffic: the
/// staged buffer is a pure spectator until commit.
#[test]
fn aborted_staged_reload_leaves_no_trace() {
    let mut env = tiny_env(1400);
    let model = PairUpLight::new(&env, small_cfg());
    let path = std::env::temp_dir().join(format!("tsc_reload_abort_{}.ckpt", std::process::id()));
    model.save_checkpoint(&path, 0).unwrap();

    let mut serve = ServeRuntime::new(model.policy_snapshot(), ServeConfig::default());
    let mut mirror = ServeRuntime::new(model.policy_snapshot(), ServeConfig::default());
    let mut obs = env.reset(21);

    for step in 0..30 {
        // Race the staged swap from every phase: stage on one step,
        // serve with it staged, abort on the next, repeat.
        match step % 3 {
            0 => serve.begin_reload(&path).unwrap(),
            2 => assert!(serve.abort_reload()),
            _ => assert!(serve.reload_in_flight()),
        }
        let got = serve.serve_step(&obs).unwrap();
        let want = mirror.serve_step(&obs).unwrap();
        assert_eq!(got.actions, want.actions, "divergence at step {step}");
        assert!(got.degraded.is_none());
        assert!(got.fell_back.iter().all(|&f| !f));
        obs = env.step(&got.actions).unwrap().obs;
    }
    // The abort drops the staged buffer for good: nothing to commit,
    // nothing left to abort twice.
    serve.begin_reload(&path).unwrap();
    assert!(serve.abort_reload());
    assert!(!serve.reload_in_flight());
    assert!(matches!(
        serve.commit_reload(),
        Err(ServeError::NoReloadPending)
    ));
    assert!(!serve.abort_reload());
    assert_eq!(serve.telemetry().degraded_steps(), 0);
    std::fs::remove_file(&path).ok();
}

/// Mirror replay: a `commit_reload` that fails (nothing staged) and a
/// `begin_reload` that fails (corrupt checkpoint) both leave the
/// runtime untouched — the continuation is bit-identical to a mirror
/// that never issued the failing calls.
#[test]
fn failed_reload_calls_mutate_nothing() {
    let mut env = tiny_env(1400);
    let model = PairUpLight::new(&env, small_cfg());
    let garbage =
        std::env::temp_dir().join(format!("tsc_reload_garbage_{}.ckpt", std::process::id()));
    std::fs::write(&garbage, b"definitely not a checkpoint").unwrap();

    let mut serve = ServeRuntime::new(model.policy_snapshot(), ServeConfig::default());
    let mut mirror = ServeRuntime::new(model.policy_snapshot(), ServeConfig::default());
    let mut obs = env.reset(33);

    for step in 0..20 {
        // Interleave failing reload calls with serving: commit with
        // nothing staged, stage from a corrupt file.
        assert!(matches!(
            serve.commit_reload(),
            Err(ServeError::NoReloadPending)
        ));
        assert!(matches!(
            serve.begin_reload(&garbage),
            Err(ServeError::Load(_))
        ));
        assert!(!serve.reload_in_flight(), "a failed begin staged nothing");
        let got = serve.serve_step(&obs).unwrap();
        let want = mirror.serve_step(&obs).unwrap();
        assert_eq!(got.actions, want.actions, "divergence at step {step}");
        obs = env.step(&got.actions).unwrap().obs;
    }
    assert_eq!(serve.telemetry().steps(), mirror.telemetry().steps());
    assert_eq!(serve.telemetry().degraded_steps(), 0);
    std::fs::remove_file(&garbage).ok();
}

/// The fleet's reload storm must skip a quarantined tenant: quarantine
/// recovery owns the checkpoint path, so no `reload_staged` or
/// `reload_swapped` event may fire for the tenant and its hot-swap
/// counter stays at zero. Recovery reload attempts stay bounded by the
/// retry budget exactly as without the storm.
#[test]
fn reload_storm_skips_quarantined_tenants() {
    let dir = std::env::temp_dir().join(format!("reload-quarantine-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("garbage.ckpt");
    // Permanently corrupt: the tenant quarantines on the first panic
    // and every recovery reload fails, so it stays quarantined while
    // the storm keeps firing.
    std::fs::write(&ckpt, b"not a checkpoint at all").unwrap();

    let env = tiny_env(2000);
    let model = PairUpLight::new(&env, small_cfg());
    let budget = 2u32;
    let mut fleet = FleetRuntime::new(
        FleetConfig {
            supervisor: SupervisorConfig {
                backoff_base: 1,
                backoff_max: 2,
                retry_budget: budget,
                ..Default::default()
            },
            seed: 5,
            ..Default::default()
        },
        vec![TenantSpec {
            name: "stormed".into(),
            snapshot: model.policy_snapshot(),
            serve_cfg: ServeConfig::default(),
            checkpoint: Some(ckpt.clone()),
            sla: Default::default(),
        }],
    );
    fleet
        .set_infra_chaos(
            InfraChaosPlan::new()
                .tenant_panic(Window::new(0, 1), TenantSel::One(0), 1.0)
                .reload_storm(Window::always(), TenantSel::All, 3),
        )
        .unwrap();
    let events_path = dir.join("events.jsonl");
    fleet.attach_obs(EventSink::create(&events_path).unwrap());

    let mut env = env;
    let mut obs = [env.reset(100)];
    for _ in 0..40 {
        let views: Vec<&[_]> = obs.iter().map(|o| o.as_slice()).collect();
        let out = fleet.step(&views).unwrap();
        obs[0] = env.step(&out.tenants[0].actions).unwrap().obs;
    }
    assert_eq!(fleet.tenant_state(0), TenantState::Quarantined);
    let stats = fleet.tenant_stats(0);
    assert_eq!(stats.hot_swaps, 0, "storm must not hot-swap in quarantine");
    assert_eq!(stats.reload_attempts, u64::from(budget));
    assert_eq!(stats.reload_failures, u64::from(budget));

    drop(fleet.detach_obs());
    let log = std::fs::read_to_string(&events_path).unwrap();
    assert!(log.contains("quarantine_enter"));
    assert!(
        !log.contains("reload_staged") && !log.contains("reload_swapped"),
        "reload storm events fired on a quarantined tenant"
    );
    std::fs::remove_dir_all(&dir).ok();
}
