//! Controller-side resilience under injected chaos: total message
//! loss must degrade cleanly to the warm-standby MaxPressure
//! controller (bounding the damage at MaxPressure's performance),
//! sensor-health fallback must engage on implausible readings, and
//! every fallback must be attributed to its cause in telemetry.

use std::time::Duration;

use pairuplight::{HealthConfig, PairUpLight, PairUpLightConfig};
use tsc_baselines::MaxPressureController;
use tsc_serve::{DegradeReason, ResilienceConfig, ServeConfig, ServeError, ServeRuntime};
use tsc_sim::chaos::AgentSel;
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{ChaosPlan, Controller, EnvConfig, LinkSel, SimConfig, TscEnv, Window};

fn tiny_env(horizon: u32) -> TscEnv {
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 150.0,
    })
    .unwrap();
    let f = flows(&grid, FlowPattern::Five, &PatternConfig::default()).unwrap();
    let scenario = grid.scenario("serve-resilience", f).unwrap();
    TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: horizon,
        },
        0,
    )
    .unwrap()
}

fn small_cfg() -> PairUpLightConfig {
    PairUpLightConfig {
        hidden: 16,
        lstm_hidden: 16,
        ..Default::default()
    }
}

/// Tier-1: 100% message loss never errors or panics, every decision is
/// attributed to `CommsHealth`, and the served actions are *exactly*
/// the warm-standby MaxPressure actions — so travel time under a cut
/// cable is bounded by the MaxPressure baseline by construction.
#[test]
fn total_message_loss_degrades_to_exact_max_pressure() {
    let mut env = tiny_env(700);
    let model = PairUpLight::new(&env, small_cfg());
    let mut serve = ServeRuntime::new(
        model.policy_snapshot(),
        ServeConfig {
            fallback_min_hold: 2,
            resilience: ResilienceConfig {
                comms_fallback_after: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    serve
        .set_chaos(
            &ChaosPlan::default().message_drop(Window::always(), AgentSel::All, 1.0),
            0,
        )
        .unwrap();
    let mut mirror = MaxPressureController::new(2);
    mirror.reset();

    let mut obs = env.reset(7);
    for _ in 0..120 {
        let step = serve.serve_step(&obs).expect("no error under total loss");
        let want = mirror.decide(&obs);
        assert_eq!(step.actions, want, "fallback must equal MaxPressure");
        assert!(step.fell_back.iter().all(|&f| f));
        assert!(step
            .causes
            .iter()
            .all(|&c| c == Some(DegradeReason::CommsHealth)));
        assert_eq!(step.degraded, Some(DegradeReason::CommsHealth));
        let out = env.step(&step.actions).unwrap();
        if out.done {
            break;
        }
        obs = out.obs;
    }
    let t = serve.telemetry();
    assert!(t.steps() > 0);
    assert_eq!(
        t.fallbacks_for(DegradeReason::CommsHealth),
        t.fallback_decisions(),
        "every fallback is attributed to comms health"
    );
    assert_eq!(t.fallbacks_for(DegradeReason::DeadlineOverrun), 0);
}

/// Partial message faults (delay, corruption) are absorbed by the
/// policy path: no fallback, no error, and a deterministic replay.
#[test]
fn delay_and_corruption_are_served_by_the_policy() {
    let plan = ChaosPlan::default()
        .message_delay(Window::new(5, 40), AgentSel::All, 2)
        .message_corrupt(Window::new(20, 60), AgentSel::All, 0.3);
    let run = || {
        let mut env = tiny_env(400);
        let model = PairUpLight::new(&env, small_cfg());
        let mut serve = ServeRuntime::new(model.policy_snapshot(), ServeConfig::default());
        serve.set_chaos(&plan, 9).unwrap();
        let mut obs = env.reset(3);
        let mut actions_trace = Vec::new();
        for _ in 0..60 {
            let step = serve.serve_step(&obs).unwrap();
            assert!(step.degraded.is_none(), "faults absorbed, not degraded");
            actions_trace.push(step.actions.clone());
            let out = env.step(&step.actions).unwrap();
            if out.done {
                break;
            }
            obs = out.obs;
        }
        actions_trace
    };
    assert_eq!(run(), run(), "chaos serving replays deterministically");
}

/// Sensor dropout in the simulator trips the observation-health
/// tracker: the affected agents fall back with `SensorHealth` cause.
#[test]
fn sensor_dropout_triggers_health_fallback() {
    let mut env = tiny_env(700);
    let model = PairUpLight::new(&env, small_cfg());
    let mut serve = ServeRuntime::new(
        model.policy_snapshot(),
        ServeConfig {
            resilience: ResilienceConfig {
                health: Some(HealthConfig {
                    suspect_drop: 1.0,
                    ..Default::default()
                }),
                sensor_fallback_after: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    // Build congestion for 300 s, then kill every detector.
    env.set_chaos(ChaosPlan::default().sensor_dropout(Window::new(300, 700), LinkSel::All, 1.0));
    let mut obs = env.reset(7);
    let mut saw_sensor_fallback = false;
    for _ in 0..120 {
        let step = serve.serve_step(&obs).expect("no error under dropout");
        if step.causes.contains(&Some(DegradeReason::SensorHealth)) {
            saw_sensor_fallback = true;
        }
        let out = env.step(&step.actions).unwrap();
        if out.done {
            break;
        }
        obs = out.obs;
    }
    assert!(
        saw_sensor_fallback,
        "zero-collapsed busy approaches must trip the health tracker"
    );
    assert!(serve.telemetry().fallbacks_for(DegradeReason::SensorHealth) > 0);
}

/// With resilience enabled but no faults anywhere, the resilient
/// runtime serves the same actions as a plain one — the resilience
/// layer is inert on healthy input.
#[test]
fn resilience_layer_is_inert_on_healthy_input() {
    let env = tiny_env(400);
    let model = PairUpLight::new(&env, small_cfg());
    let mut plain = ServeRuntime::new(model.policy_snapshot(), ServeConfig::default());
    let mut resilient = ServeRuntime::new(
        model.policy_snapshot(),
        ServeConfig {
            resilience: ResilienceConfig {
                health: Some(HealthConfig::default()),
                sensor_fallback_after: 3,
                comms_fallback_after: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut env_a = env.clone();
    let mut env_b = env;
    let mut obs_a = env_a.reset(11);
    let mut obs_b = env_b.reset(11);
    for _ in 0..60 {
        let sa = plain.serve_step(&obs_a).unwrap();
        let sb = resilient.serve_step(&obs_b).unwrap();
        assert_eq!(sa.actions, sb.actions);
        assert!(sb.degraded.is_none());
        let oa = env_a.step(&sa.actions).unwrap();
        let ob = env_b.step(&sb.actions).unwrap();
        if oa.done {
            break;
        }
        obs_a = oa.obs;
        obs_b = ob.obs;
    }
}

#[test]
fn chaos_plan_validation_rejects_out_of_range_agents() {
    let env = tiny_env(200);
    let model = PairUpLight::new(&env, small_cfg());
    let mut serve = ServeRuntime::new(model.policy_snapshot(), ServeConfig::default());
    let bad = ChaosPlan::default().message_drop(Window::always(), AgentSel::One(99), 1.0);
    match serve.set_chaos(&bad, 0) {
        Err(ServeError::InvalidChaos {
            agent: 99,
            agents: 4,
        }) => {}
        other => panic!("expected InvalidChaos, got {other:?}"),
    }
    // A valid plan still installs.
    let ok = ChaosPlan::default().message_drop(Window::always(), AgentSel::One(3), 1.0);
    serve.set_chaos(&ok, 0).unwrap();
}

/// Injected deadline overruns and comms fallback compose: the cause
/// telemetry separates slow-model decisions from cut-cable decisions.
#[test]
fn causes_separate_deadline_from_comms() {
    let mut env = tiny_env(700);
    let model = PairUpLight::new(&env, small_cfg());
    let mut serve = ServeRuntime::new(
        model.policy_snapshot(),
        ServeConfig {
            deadline: Some(Duration::from_millis(40)),
            resilience: ResilienceConfig {
                comms_fallback_after: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    // Messages drop only for the first 5 decision steps.
    serve
        .set_chaos(
            &ChaosPlan::default().message_drop(Window::new(0, 5), AgentSel::All, 1.0),
            0,
        )
        .unwrap();
    let mut obs = env.reset(7);
    for t in 0..10 {
        // One deliberately slow step after the comms window closes.
        serve.inject_delay(if t == 7 {
            Some(Duration::from_millis(80))
        } else {
            None
        });
        let step = serve.serve_step(&obs).unwrap();
        match t {
            0..=4 => assert_eq!(step.degraded, Some(DegradeReason::CommsHealth)),
            7 => assert_eq!(step.degraded, Some(DegradeReason::DeadlineOverrun)),
            _ => assert!(step.degraded.is_none()),
        }
        obs = env.step(&step.actions).unwrap().obs;
    }
    let n = env.num_agents() as u64;
    let t = serve.telemetry();
    assert_eq!(t.fallbacks_for(DegradeReason::CommsHealth), 5 * n);
    assert_eq!(t.fallbacks_for(DegradeReason::DeadlineOverrun), n);
}
