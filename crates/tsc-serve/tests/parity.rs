//! Tier-1 serving parity: a fixed checkpoint plus a fixed seed must
//! make the batched tape-free serving path produce **exactly** the
//! greedy action sequence of the training stack's controller, step by
//! step, over a full 200-decision episode.

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_serve::{ServeConfig, ServeRuntime};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{Controller, EnvConfig, SimConfig, TscEnv};

fn tiny_env(horizon: u32) -> TscEnv {
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 150.0,
    })
    .unwrap();
    let f = flows(&grid, FlowPattern::Five, &PatternConfig::default()).unwrap();
    let scenario = grid.scenario("serve-parity", f).unwrap();
    TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: horizon,
        },
        0,
    )
    .unwrap()
}

fn small_cfg() -> PairUpLightConfig {
    let mut cfg = PairUpLightConfig {
        hidden: 16,
        lstm_hidden: 16,
        ..Default::default()
    };
    cfg.ppo.minibatch = 32;
    cfg.ppo.epochs = 2;
    cfg
}

/// Drives `env` for a full episode, asserting at every step that the
/// serving runtime and the reference controller pick identical actions.
/// Returns the number of decision steps taken.
fn assert_lockstep_parity(
    env: &mut TscEnv,
    serve: &mut ServeRuntime,
    reference: &mut pairuplight::PairUpLightController,
    seed: u64,
) -> usize {
    let mut obs = env.reset(seed);
    reference.reset();
    Controller::reset(serve);
    let mut steps = 0usize;
    loop {
        let want = reference.decide(&obs);
        let step = serve.serve_step(&obs).unwrap();
        assert_eq!(step.actions, want, "action divergence at step {steps}");
        assert!(
            step.fell_back.iter().all(|&f| !f),
            "unexpected fallback at step {steps}"
        );
        assert!(step.degraded.is_none());
        let r = env.step(&want).unwrap();
        obs = r.obs;
        steps += 1;
        if r.done {
            return steps;
        }
    }
}

#[test]
fn batched_serving_matches_training_stack_over_200_steps() {
    let mut train_env = tiny_env(210);
    let mut model = PairUpLight::new(&train_env, small_cfg());
    model.train_episode(&mut train_env, 0).unwrap();
    let path = std::env::temp_dir().join("tsc_serve_parity_shared.ckpt");
    model.save_checkpoint(&path, 0).unwrap();

    let mut env = tiny_env(1400);
    assert_eq!(env.steps_per_episode(), 200);
    let mut serve =
        ServeRuntime::from_checkpoint(&env, small_cfg(), ServeConfig::default(), &path).unwrap();
    assert!(serve.policy().shared(), "2x2 default cfg shares parameters");
    let mut reference = model.controller();
    reference.set_greedy();

    let steps = assert_lockstep_parity(&mut env, &mut serve, &mut reference, 42);
    assert_eq!(steps, 200);
    assert_eq!(serve.telemetry().steps(), 200);
    assert_eq!(serve.telemetry().decisions(), 200 * env.num_agents() as u64);
    assert_eq!(serve.telemetry().fallback_decisions(), 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn per_agent_serving_matches_training_stack_without_parameter_sharing() {
    let cfg = PairUpLightConfig {
        parameter_sharing: false,
        ..small_cfg()
    };
    let env0 = tiny_env(420);
    let model = PairUpLight::new(&env0, cfg);
    let path = std::env::temp_dir().join("tsc_serve_parity_unshared.ckpt");
    model.save_checkpoint(&path, 0).unwrap();

    let mut env = tiny_env(420);
    let mut serve =
        ServeRuntime::from_checkpoint(&env, cfg, ServeConfig::default(), &path).unwrap();
    assert!(!serve.policy().shared());
    let mut reference = model.controller();
    reference.set_greedy();

    let steps = assert_lockstep_parity(&mut env, &mut serve, &mut reference, 7);
    assert_eq!(steps, 60);
    std::fs::remove_file(&path).ok();
}

#[test]
fn agent_count_mismatch_is_a_typed_error() {
    let env = tiny_env(140);
    let model = PairUpLight::new(&env, small_cfg());
    let mut serve = ServeRuntime::new(model.policy_snapshot(), ServeConfig::default());
    let obs = env.clone().reset(0);
    match serve.serve_step(&obs[..1]) {
        Err(tsc_serve::ServeError::AgentCountMismatch { got, expected }) => {
            assert_eq!(got, 1);
            assert_eq!(expected, env.num_agents());
        }
        other => panic!("expected AgentCountMismatch, got {other:?}"),
    }
}
