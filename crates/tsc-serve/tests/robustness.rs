//! Checkpoint robustness at load time: truncated files, corrupted
//! checksum trailers, and configuration-fingerprint mismatches must
//! all surface as **typed** errors — through the tsc-serve loader, the
//! training stack's `load_checkpoint`, and the hot-reload path — and
//! must leave the in-memory model bit-for-bit untouched.

use std::path::{Path, PathBuf};

use pairuplight::{PairUpLight, PairUpLightConfig, TrainError};
use tsc_serve::{ServeConfig, ServeError, ServeRuntime};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, TscEnv};

fn tiny_env() -> TscEnv {
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 150.0,
    })
    .unwrap();
    let f = flows(&grid, FlowPattern::Five, &PatternConfig::default()).unwrap();
    let scenario = grid.scenario("serve-robust", f).unwrap();
    TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: 140,
        },
        0,
    )
    .unwrap()
}

fn small_cfg() -> PairUpLightConfig {
    PairUpLightConfig {
        hidden: 16,
        lstm_hidden: 16,
        ..Default::default()
    }
}

fn good_checkpoint(env: &TscEnv, cfg: PairUpLightConfig, name: &str) -> (PairUpLight, PathBuf) {
    let model = PairUpLight::new(env, cfg);
    let path = std::env::temp_dir().join(name);
    model.save_checkpoint(&path, 0).unwrap();
    (model, path)
}

/// Truncates `src` to 60% of its length.
fn truncated_copy(src: &Path, name: &str) -> PathBuf {
    let bytes = std::fs::read(src).unwrap();
    let dst = std::env::temp_dir().join(name);
    std::fs::write(&dst, &bytes[..bytes.len() * 6 / 10]).unwrap();
    dst
}

/// Flips one digit inside the checksummed body of `src`.
fn corrupted_copy(src: &Path, name: &str) -> PathBuf {
    let text = std::fs::read_to_string(src).unwrap();
    let body_end = text.rfind("\nchecksum ").unwrap();
    let mut bytes = text.into_bytes();
    let idx = (body_end / 2..body_end)
        .find(|&i| bytes[i].is_ascii_digit() && bytes[i] != b'9')
        .expect("weight text contains digits");
    bytes[idx] += 1;
    let dst = std::env::temp_dir().join(name);
    std::fs::write(&dst, &bytes).unwrap();
    dst
}

/// Asserts all three load paths reject `bad` with a typed Load error
/// whose message contains `expect_msg`, leaving weights untouched and
/// serving live.
fn assert_rejected_everywhere(env: &TscEnv, good: &Path, bad: &Path, expect_msg: &str) {
    // 1. tsc-serve's own loader.
    let err = ServeRuntime::from_checkpoint(env, small_cfg(), ServeConfig::default(), bad)
        .map(|_| ())
        .expect_err("bad checkpoint must be rejected");
    assert!(matches!(err, ServeError::Load(_)), "got {err:?}");
    assert!(
        format!("{err}").contains(expect_msg),
        "error {err} should mention {expect_msg:?}"
    );

    // 2. The training stack's load_checkpoint: typed error, weights
    //    bit-for-bit untouched.
    let mut model = PairUpLight::new(env, small_cfg());
    let before = model.policy_snapshot().parameter_vector();
    let err = model.load_checkpoint(bad).expect_err("must be rejected");
    assert!(matches!(err, TrainError::Load(_)), "got {err:?}");
    assert_eq!(
        model.policy_snapshot().parameter_vector(),
        before,
        "failed load must not touch the learner"
    );

    // 3. Hot reload on a live runtime: typed error, nothing staged,
    //    live policy untouched, serving continues.
    let mut serve =
        ServeRuntime::from_checkpoint(env, small_cfg(), ServeConfig::default(), good).unwrap();
    let before = serve.policy().parameter_vector();
    let err = serve.begin_reload(bad).expect_err("must be rejected");
    assert!(matches!(err, ServeError::Load(_)), "got {err:?}");
    assert!(!serve.reload_in_flight());
    assert_eq!(serve.policy().parameter_vector(), before);
    let obs = env.clone().reset(1);
    let step = serve.serve_step(&obs).unwrap();
    assert!(step.degraded.is_none(), "serving must continue undegraded");
}

#[test]
fn truncated_checkpoint_is_rejected_with_model_untouched() {
    let env = tiny_env();
    let (_model, good) = good_checkpoint(&env, small_cfg(), "tsc_serve_robust_trunc_good.ckpt");
    let bad = truncated_copy(&good, "tsc_serve_robust_trunc_bad.ckpt");
    assert_rejected_everywhere(&env, &good, &bad, "checksum");
    std::fs::remove_file(&good).ok();
    std::fs::remove_file(&bad).ok();
}

#[test]
fn corrupted_checksum_trailer_is_rejected_with_model_untouched() {
    let env = tiny_env();
    let (_model, good) = good_checkpoint(&env, small_cfg(), "tsc_serve_robust_corrupt_good.ckpt");
    let bad = corrupted_copy(&good, "tsc_serve_robust_corrupt_bad.ckpt");
    assert_rejected_everywhere(&env, &good, &bad, "checksum mismatch");
    std::fs::remove_file(&good).ok();
    std::fs::remove_file(&bad).ok();
}

#[test]
fn wrong_config_fingerprint_is_rejected_with_model_untouched() {
    let env = tiny_env();
    let (_model, good) = good_checkpoint(&env, small_cfg(), "tsc_serve_robust_fp_good.ckpt");
    // Same tensor layout, different configuration: only the
    // fingerprint check can (and must) catch this.
    let other_cfg = PairUpLightConfig {
        sigma: small_cfg().sigma + 0.25,
        ..small_cfg()
    };
    let (_m2, bad) = good_checkpoint(&env, other_cfg, "tsc_serve_robust_fp_bad.ckpt");
    assert_rejected_everywhere(&env, &good, &bad, "fingerprint mismatch");
    std::fs::remove_file(&good).ok();
    std::fs::remove_file(&bad).ok();
}
