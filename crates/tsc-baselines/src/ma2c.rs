//! The MA2C baseline (Chu et al., 2019; paper §VI-B): independent
//! advantage actor-critic agents, one per intersection, **without**
//! parameter sharing. Each agent's input combines:
//!
//! * its local observation,
//! * spatially discounted neighbor observations (discount α), and
//! * neighbor *fingerprints* — the neighbors' most recent policy
//!   distributions — to mitigate non-stationarity.
//!
//! Rewards are likewise spatially discounted over the one-hop
//! neighborhood.

use rand::rngs::StdRng;
use rand::SeedableRng;

use pairuplight::{ActorNet, CriticNet, ObsEncoder, ObsNorm};
use tsc_nn::{Adam, Graph, LstmState, Params, Tensor};
use tsc_rl::a2c::{policy_loss, A2cConfig};
use tsc_rl::buffer::{RolloutBuffer, Transition};
use tsc_rl::distribution::Categorical;
use tsc_rl::ppo::{entropy_bonus, value_loss};
use tsc_sim::{Controller, EpisodeStats, IntersectionObs, SimError, TscEnv};

/// MA2C hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Ma2cConfig {
    /// A2C losses and spatial discount α.
    pub a2c: A2cConfig,
    /// Trunk width.
    pub hidden: usize,
    /// LSTM width.
    pub lstm_hidden: usize,
    /// Action-space width.
    pub max_phases: usize,
    /// Reward scaling.
    pub reward_scale: f32,
    /// Scaled rewards are clamped to `[-reward_clip, 0]` (gridlock
    /// waits are unbounded).
    pub reward_clip: f32,
    /// Weight-init / exploration seed.
    pub seed: u64,
}

impl Default for Ma2cConfig {
    fn default() -> Self {
        Ma2cConfig {
            a2c: A2cConfig::default(),
            hidden: 64,
            lstm_hidden: 64,
            max_phases: 4,
            reward_scale: 0.02,
            reward_clip: 5.0,
            seed: 0,
        }
    }
}

#[derive(Debug)]
struct AgentNet {
    params: Params,
    actor: ActorNet,
    critic: CriticNet,
    opt: Adam,
}

/// The MA2C learner.
#[derive(Debug)]
pub struct Ma2c {
    cfg: Ma2cConfig,
    encoder: ObsEncoder,
    nets: Vec<AgentNet>,
    num_agents: usize,
    phases_per_agent: Vec<usize>,
    input_dim: usize,
    episodes_trained: usize,
    rng: StdRng,
}

impl Ma2c {
    /// Creates an MA2C learner for the environment's scenario.
    pub fn new(env: &TscEnv, cfg: Ma2cConfig) -> Self {
        let scenario = env.scenario();
        let agents = scenario.agents();
        let encoder = ObsEncoder::new(
            &scenario.network,
            &agents,
            cfg.max_phases,
            ObsNorm::default(),
        );
        // local + 4 neighbor slots of (obs + fingerprint).
        let input_dim = encoder.local_dim() + 4 * (encoder.local_dim() + cfg.max_phases);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let nets = (0..agents.len())
            .map(|_| {
                let mut params = Params::new();
                let actor = ActorNet::new(
                    &mut params,
                    input_dim,
                    0,
                    cfg.hidden,
                    cfg.lstm_hidden,
                    cfg.max_phases,
                    &mut rng,
                );
                let critic = CriticNet::new(
                    &mut params,
                    input_dim,
                    cfg.hidden,
                    cfg.lstm_hidden,
                    &mut rng,
                );
                let opt = Adam::new(&params, cfg.a2c.lr);
                AgentNet {
                    params,
                    actor,
                    critic,
                    opt,
                }
            })
            .collect();
        let phases_per_agent = scenario
            .signal_plans
            .iter()
            .map(|p| p.num_phases().min(cfg.max_phases))
            .collect();
        Ma2c {
            cfg,
            encoder,
            nets,
            num_agents: agents.len(),
            phases_per_agent,
            input_dim,
            episodes_trained: 0,
            rng,
        }
    }

    /// Episodes trained so far.
    pub fn episodes_trained(&self) -> usize {
        self.episodes_trained
    }

    /// Input dimension of each agent's networks.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Assembles agent `a`'s input: local obs, α-discounted neighbor
    /// obs, neighbor fingerprints (zero-padded to 4 slots).
    fn assemble_input(
        &self,
        all_obs: &[IntersectionObs],
        fingerprints: &[Vec<f32>],
        a: usize,
    ) -> Vec<f32> {
        let alpha = self.cfg.a2c.spatial_discount;
        let mut input = self.encoder.encode_local(&all_obs[a]);
        let neighbors = self.encoder.one_hop(a);
        for slot in 0..4 {
            match neighbors.get(slot) {
                Some(&n) => {
                    let nbr = self.encoder.encode_local(&all_obs[n]);
                    input.extend(nbr.iter().map(|x| x * alpha));
                    input.extend_from_slice(&fingerprints[n]);
                }
                None => {
                    input.extend(std::iter::repeat_n(0.0, self.encoder.local_dim()));
                    input.extend(std::iter::repeat_n(0.0, self.cfg.max_phases));
                }
            }
        }
        input
    }

    /// Spatially discounted reward of agent `a` (own + α · neighbors).
    fn discounted_reward(&self, rewards: &[f64], a: usize) -> f32 {
        let alpha = self.cfg.a2c.spatial_discount as f64;
        let mut r = rewards[a];
        for &n in self.encoder.one_hop(a) {
            r += alpha * rewards[n];
        }
        ((r * self.cfg.reward_scale as f64) as f32).clamp(-self.cfg.reward_clip, 0.0)
    }

    /// Runs one training episode (rollout + one A2C update per agent).
    ///
    /// # Errors
    ///
    /// Propagates environment failures.
    pub fn train_episode(&mut self, env: &mut TscEnv, seed: u64) -> Result<EpisodeStats, SimError> {
        let n = self.num_agents;
        let mut all_obs = env.reset(seed);
        let mut states: Vec<LstmState> = (0..n)
            .map(|_| LstmState::zeros(1, self.cfg.lstm_hidden))
            .collect();
        let mut critic_states = states.clone();
        let mut fingerprints: Vec<Vec<f32>> = (0..n)
            .map(|_| vec![1.0 / self.cfg.max_phases as f32; self.cfg.max_phases])
            .collect();
        let mut buffer = RolloutBuffer::new(n);
        let mut total_reward = 0.0f64;
        loop {
            let mut actions = vec![0usize; n];
            let mut pending: Vec<Transition> = Vec::with_capacity(n);
            let mut new_fingerprints = fingerprints.clone();
            for a in 0..n {
                let input = self.assemble_input(&all_obs, &fingerprints, a);
                let net = &self.nets[a];
                let mut g = Graph::new();
                let (out, next_state) = net.actor.step(
                    &mut g,
                    &net.params,
                    Tensor::row_from_slice(&input),
                    &states[a],
                );
                let probs = tsc_nn::softmax_rows(g.value(out.logits));
                let mut gc = Graph::new();
                let (v, next_cstate) = net.critic.step(
                    &mut gc,
                    &net.params,
                    Tensor::row_from_slice(&input),
                    &critic_states[a],
                );
                let np = self.phases_per_agent[a];
                let mut masked: Vec<f32> = probs.row(0)[..np].to_vec();
                let s: f32 = masked.iter().sum();
                for p in &mut masked {
                    *p /= s.max(1e-8);
                }
                let dist = Categorical::new(&masked);
                let action = dist.sample(&mut self.rng);
                actions[a] = action;
                new_fingerprints[a] = probs.row(0).to_vec();
                pending.push(Transition {
                    obs: input.clone(),
                    critic_obs: input,
                    action,
                    reward: 0.0,
                    value: gc.value(v).get(0, 0),
                    log_prob: dist.log_prob(action),
                    actor_h: (states[a].h.row(0).to_vec(), states[a].c.row(0).to_vec()),
                    critic_h: (
                        critic_states[a].h.row(0).to_vec(),
                        critic_states[a].c.row(0).to_vec(),
                    ),
                    message_in: Vec::new(),
                    aux: Vec::new(),
                });
                states[a] = next_state;
                critic_states[a] = next_cstate;
            }
            let step = env.step(&actions)?;
            for (a, mut t) in pending.into_iter().enumerate() {
                t.reward = self.discounted_reward(&step.rewards, a);
                total_reward += step.rewards[a];
                buffer.push(a, t);
            }
            fingerprints = new_fingerprints;
            all_obs = step.obs;
            if step.done {
                break;
            }
        }
        // Bootstrap + per-agent A2C update.
        let mut last_values = vec![0.0f32; n];
        for a in 0..n {
            let input = self.assemble_input(&all_obs, &fingerprints, a);
            let net = &self.nets[a];
            let mut g = Graph::new();
            let (v, _) = net.critic.step(
                &mut g,
                &net.params,
                Tensor::row_from_slice(&input),
                &critic_states[a],
            );
            last_values[a] = g.value(v).get(0, 0);
        }
        buffer.compute_targets(&last_values, self.cfg.a2c.gamma, self.cfg.a2c.lambda);
        for a in 0..n {
            self.update_agent(a, &buffer);
        }
        self.episodes_trained += 1;
        Ok(EpisodeStats {
            steps: buffer.len(0),
            total_reward,
            avg_waiting_time: env.sim().metrics().avg_waiting_time(),
            avg_travel_time: env.sim().avg_travel_time(),
            finished: env.sim().metrics().finished(),
            spawned: env.sim().metrics().spawned(),
        })
    }

    fn update_agent(&mut self, a: usize, buffer: &RolloutBuffer) {
        let steps = buffer.transitions(a);
        if steps.is_empty() {
            return;
        }
        let rows = steps.len();
        let stack = |f: &dyn Fn(&Transition) -> &[f32]| {
            let refs: Vec<&[f32]> = steps.iter().map(f).collect();
            Tensor::from_rows(&refs)
        };
        let x_t = stack(&|t| t.obs.as_slice());
        let h_t = stack(&|t| t.actor_h.0.as_slice());
        let c_t = stack(&|t| t.actor_h.1.as_slice());
        let ch_t = stack(&|t| t.critic_h.0.as_slice());
        let cc_t = stack(&|t| t.critic_h.1.as_slice());
        let actions: Vec<usize> = steps.iter().map(|t| t.action).collect();
        let advs: Vec<f32> = (0..rows).map(|t| buffer.target(a, t).advantage).collect();
        let rets: Vec<f32> = (0..rows).map(|t| buffer.target(a, t).ret).collect();
        let net = &mut self.nets[a];
        let mut g = Graph::new();
        let x = g.input(x_t.clone());
        let h = g.input(h_t);
        let c = g.input(c_t);
        let (out, _) = net.actor.forward(&mut g, &net.params, x, h, c);
        let logp_all = g.log_softmax(out.logits);
        let picked = g.gather_cols(logp_all, actions);
        let pl = policy_loss(&mut g, picked, &advs);
        let ent = entropy_bonus(&mut g, out.logits);
        let cx = g.input(x_t);
        let ch = g.input(ch_t);
        let cc = g.input(cc_t);
        let (v, _, _) = net.critic.forward(&mut g, &net.params, cx, ch, cc);
        let vl = value_loss(&mut g, v, &rets);
        let vls = g.scale(vl, self.cfg.a2c.value_coef);
        let ents = g.scale(ent, -self.cfg.a2c.entropy_coef);
        let mut loss = g.add(pl, vls);
        loss = g.add(loss, ents);
        g.backward(loss, &mut net.params);
        net.params.clip_grad_norm(self.cfg.a2c.max_grad_norm);
        net.opt.step(&mut net.params);
    }

    /// Snapshots the current per-agent policies for evaluation.
    pub fn controller(&self) -> Ma2cController {
        Ma2cController {
            cfg: self.cfg,
            encoder: self.encoder.clone(),
            actors: self
                .nets
                .iter()
                .map(|n| (n.params.clone(), n.actor.clone()))
                .collect(),
            phases_per_agent: self.phases_per_agent.clone(),
            states: Vec::new(),
            fingerprints: Vec::new(),
            num_agents: self.num_agents,
        }
    }
}

/// The deployed MA2C policy (greedy).
#[derive(Debug)]
pub struct Ma2cController {
    cfg: Ma2cConfig,
    encoder: ObsEncoder,
    actors: Vec<(Params, ActorNet)>,
    phases_per_agent: Vec<usize>,
    states: Vec<LstmState>,
    fingerprints: Vec<Vec<f32>>,
    num_agents: usize,
}

impl Ma2cController {
    fn assemble_input(&self, all_obs: &[IntersectionObs], a: usize) -> Vec<f32> {
        let alpha = self.cfg.a2c.spatial_discount;
        let mut input = self.encoder.encode_local(&all_obs[a]);
        let neighbors = self.encoder.one_hop(a);
        for slot in 0..4 {
            match neighbors.get(slot) {
                Some(&n) => {
                    let nbr = self.encoder.encode_local(&all_obs[n]);
                    input.extend(nbr.iter().map(|x| x * alpha));
                    input.extend_from_slice(&self.fingerprints[n]);
                }
                None => {
                    input.extend(std::iter::repeat_n(0.0, self.encoder.local_dim()));
                    input.extend(std::iter::repeat_n(0.0, self.cfg.max_phases));
                }
            }
        }
        input
    }
}

impl Controller for Ma2cController {
    fn reset(&mut self) {
        self.states = (0..self.num_agents)
            .map(|_| LstmState::zeros(1, self.cfg.lstm_hidden))
            .collect();
        self.fingerprints = (0..self.num_agents)
            .map(|_| vec![1.0 / self.cfg.max_phases as f32; self.cfg.max_phases])
            .collect();
    }

    fn decide(&mut self, obs: &[IntersectionObs]) -> Vec<usize> {
        if self.states.len() != self.num_agents {
            self.reset();
        }
        let mut actions = Vec::with_capacity(self.num_agents);
        let mut new_fp = self.fingerprints.clone();
        for (a, fp) in new_fp.iter_mut().enumerate() {
            let input = self.assemble_input(obs, a);
            let (params, actor) = &self.actors[a];
            let mut g = Graph::new();
            let (out, next) = actor.step(
                &mut g,
                params,
                Tensor::row_from_slice(&input),
                &self.states[a],
            );
            let probs = tsc_nn::softmax_rows(g.value(out.logits));
            *fp = probs.row(0).to_vec();
            let np = self.phases_per_agent[a];
            let action = probs.row(0)[..np]
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            actions.push(action);
            self.states[a] = next;
        }
        self.fingerprints = new_fp;
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_sim::scenario::grid::{Grid, GridConfig};
    use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
    use tsc_sim::{EnvConfig, SimConfig};

    fn env() -> TscEnv {
        let grid = Grid::build(GridConfig {
            cols: 2,
            rows: 2,
            spacing: 150.0,
        })
        .unwrap();
        let f = flows(&grid, FlowPattern::Five, &PatternConfig::default()).unwrap();
        TscEnv::new(
            grid.scenario("t", f).unwrap(),
            SimConfig::default(),
            EnvConfig {
                decision_interval: 5,
                episode_horizon: 140,
            },
            0,
        )
        .unwrap()
    }

    fn small_cfg() -> Ma2cConfig {
        Ma2cConfig {
            hidden: 16,
            lstm_hidden: 16,
            ..Ma2cConfig::default()
        }
    }

    #[test]
    fn input_combines_local_neighbors_and_fingerprints() {
        let e = env();
        let m = Ma2c::new(&e, small_cfg());
        // local 32 + 4 * (32 + 4) = 176.
        assert_eq!(m.input_dim(), 176);
    }

    #[test]
    fn one_episode_trains_all_agents() {
        let mut e = env();
        let mut m = Ma2c::new(&e, small_cfg());
        let stats = m.train_episode(&mut e, 0).unwrap();
        assert!(stats.steps > 0);
        assert_eq!(m.episodes_trained(), 1);
    }

    #[test]
    fn controller_runs_episode() {
        let mut e = env();
        let mut m = Ma2c::new(&e, small_cfg());
        m.train_episode(&mut e, 0).unwrap();
        let mut ctl = m.controller();
        let stats = e.run_episode(&mut ctl, 9).unwrap();
        assert!(stats.spawned > 0);
    }

    #[test]
    fn training_is_deterministic() {
        let run = || {
            let mut e = env();
            let mut m = Ma2c::new(&e, small_cfg());
            m.train_episode(&mut e, 4).unwrap().total_reward
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spatial_discount_mixes_neighbor_rewards() {
        let e = env();
        let m = Ma2c::new(&e, small_cfg());
        let rewards = vec![-10.0, 0.0, 0.0, 0.0];
        // Agent 0's neighbors in a 2x2 grid: agents 1 and 2.
        let own = m.discounted_reward(&rewards, 0);
        let nbr = m.discounted_reward(&rewards, 1);
        assert!(own < nbr, "own penalty dominates");
        assert!(nbr < 0.0, "neighbor penalty leaks in via alpha");
    }
}
