//! The SingleAgentRL baseline (paper §VI-B): one PPO policy trained on
//! local observations only and applied uniformly to every intersection
//! — no inter-agent communication, no neighbor information in the
//! critic.
//!
//! This is exactly the PairUpLight backbone with the communication
//! module removed and a local critic, so it reuses the
//! [`pairuplight`] trainer with
//! [`PairUpLightConfig::single_agent`].

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_sim::TscEnv;

/// Builds the SingleAgentRL learner for `env`.
///
/// The returned learner trains a single shared PPO policy from local
/// observations; its [`controller`](PairUpLight::controller) deploys
/// that policy to all intersections.
pub fn single_agent(env: &TscEnv, seed: u64) -> PairUpLight {
    let cfg = PairUpLightConfig {
        seed,
        ..PairUpLightConfig::single_agent()
    };
    PairUpLight::new(env, cfg)
}

/// Builds SingleAgentRL with custom network/optimization settings,
/// forcing the baseline's defining constraints (no communication,
/// local critic, shared parameters) regardless of the input.
pub fn single_agent_with(env: &TscEnv, mut cfg: PairUpLightConfig) -> PairUpLight {
    cfg.bandwidth = 0;
    cfg.critic_mode = pairuplight::CriticMode::Local;
    cfg.parameter_sharing = true;
    PairUpLight::new(env, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_sim::scenario::grid::{Grid, GridConfig};
    use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
    use tsc_sim::{EnvConfig, SimConfig};

    fn env() -> TscEnv {
        let grid = Grid::build(GridConfig {
            cols: 2,
            rows: 2,
            spacing: 150.0,
        })
        .unwrap();
        let f = flows(&grid, FlowPattern::Five, &PatternConfig::default()).unwrap();
        TscEnv::new(
            grid.scenario("t", f).unwrap(),
            SimConfig::default(),
            EnvConfig {
                decision_interval: 5,
                episode_horizon: 140,
            },
            0,
        )
        .unwrap()
    }

    #[test]
    fn single_agent_trains_without_messages() {
        let mut e = env();
        let mut model = single_agent(&e, 3);
        let ep = model.train_episode(&mut e, 0).unwrap();
        assert_eq!(ep.mean_message, 0.0, "no communication");
        assert!(ep.stats.steps > 0);
    }

    #[test]
    fn constraints_are_enforced() {
        let e = env();
        let custom = PairUpLightConfig {
            bandwidth: 3,
            parameter_sharing: false,
            ..Default::default()
        };
        let model = single_agent_with(&e, custom);
        assert_eq!(model.config().bandwidth, 0);
        assert!(model.config().parameter_sharing);
    }
}
