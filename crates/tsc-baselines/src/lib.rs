//! # tsc-baselines — comparison controllers for the PairUpLight study
//!
//! The four baselines of the paper's §VI-B, all runnable against any
//! [`tsc_sim::TscEnv`] through the shared [`tsc_sim::Controller`]
//! trait:
//!
//! * [`fixed_time`] — predetermined cyclic signal timing;
//! * [`mod@single_agent`] — one PPO policy on local observations applied to
//!   every intersection (no communication, local critic);
//! * [`ma2c`] — independent A2C agents with neighbor observations and
//!   policy fingerprints, no parameter sharing (Chu et al., 2019);
//! * [`colight`] — parameter-shared DQN over a graph-attention
//!   embedding of the one-hop neighborhood (Wei et al., 2019).
//!
//! Beyond the paper's comparison set, two classic traffic-engineering
//! controllers give non-learning reference points (§II-A):
//!
//! * [`actuated`] — gap-out/extension logic with min/max green;
//! * [`max_pressure`] — greedy Varaiya-style max-pressure control.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod actuated;
pub mod colight;
pub mod fixed_time;
pub mod ma2c;
pub mod max_pressure;
pub mod single_agent;

pub use actuated::ActuatedController;
pub use colight::{CoLight, CoLightConfig, CoLightController};
pub use fixed_time::FixedTimeController;
pub use ma2c::{Ma2c, Ma2cConfig, Ma2cController};
pub use max_pressure::MaxPressureController;
pub use single_agent::{single_agent, single_agent_with};
