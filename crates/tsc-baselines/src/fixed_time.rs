//! The FixedTime baseline: a predetermined cyclic signal plan that
//! ignores traffic conditions (paper §VI-B).

use tsc_sim::{Controller, IntersectionObs};

/// Cycles every intersection through its phases in order, holding each
/// phase for a fixed number of decision steps.
#[derive(Debug, Clone)]
pub struct FixedTimeController {
    hold_steps: usize,
    step: usize,
}

impl FixedTimeController {
    /// Creates a plan holding each phase for `hold_steps` decisions
    /// (with the paper's 5 s green + 2 s yellow cadence, `hold_steps =
    /// 4` gives a ~28 s split per phase).
    ///
    /// # Panics
    ///
    /// Panics if `hold_steps` is zero.
    pub fn new(hold_steps: usize) -> Self {
        assert!(hold_steps > 0, "hold_steps must be positive");
        FixedTimeController {
            hold_steps,
            step: 0,
        }
    }

    /// The configured hold length in decision steps.
    pub fn hold_steps(&self) -> usize {
        self.hold_steps
    }
}

impl Default for FixedTimeController {
    fn default() -> Self {
        FixedTimeController::new(4)
    }
}

impl Controller for FixedTimeController {
    fn reset(&mut self) {
        self.step = 0;
    }

    fn decide(&mut self, obs: &[IntersectionObs]) -> Vec<usize> {
        let phase_slot = self.step / self.hold_steps;
        self.step += 1;
        obs.iter()
            .map(|o| phase_slot % o.num_phases.max(1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_sim::NodeId;

    fn obs(num_phases: usize) -> IntersectionObs {
        IntersectionObs {
            node: NodeId(0),
            time: 0,
            incoming: vec![],
            outgoing_counts: vec![],
            outgoing_links: vec![],
            current_phase: 0,
            num_phases,
        }
    }

    #[test]
    fn cycles_through_all_phases() {
        let mut c = FixedTimeController::new(2);
        let o = vec![obs(4)];
        let mut seen = Vec::new();
        for _ in 0..8 {
            seen.push(c.decide(&o)[0]);
        }
        assert_eq!(seen, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn wraps_around_after_full_cycle() {
        let mut c = FixedTimeController::new(1);
        let o = vec![obs(3)];
        let seen: Vec<usize> = (0..7).map(|_| c.decide(&o)[0]).collect();
        assert_eq!(seen, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn heterogeneous_phase_counts_wrap_independently() {
        let mut c = FixedTimeController::new(1);
        let o = vec![obs(4), obs(2)];
        let step3 = {
            c.reset();
            c.decide(&o);
            c.decide(&o);
            c.decide(&o)
        };
        assert_eq!(step3, vec![2, 0]);
    }

    #[test]
    fn reset_restarts_the_cycle() {
        let mut c = FixedTimeController::new(1);
        let o = vec![obs(4)];
        c.decide(&o);
        c.decide(&o);
        c.reset();
        assert_eq!(c.decide(&o), vec![0]);
    }
}
