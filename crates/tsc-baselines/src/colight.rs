//! The CoLight baseline (Wei et al., 2019; paper §VI-B): a
//! parameter-shared deep Q-network whose state embedding is a graph
//! attention over the intersection's one-hop neighborhood.
//!
//! For each agent, the observations of itself and its (up to four)
//! neighbors are embedded, attention weights are computed between the
//! agent's query and all keys (missing neighbor slots are masked out),
//! and the attended context is concatenated with the self-embedding
//! before the Q head. Training is standard DQN: shared replay over all
//! agents, target network, ε-greedy exploration.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pairuplight::{ObsEncoder, ObsNorm};
use tsc_nn::{Adam, Graph, Init, Linear, Params, Tensor, Var};
use tsc_rl::buffer::{ReplayBuffer, ReplayTransition};
use tsc_rl::distribution::LinearSchedule;
use tsc_rl::dqn::DqnConfig;
use tsc_sim::{Controller, EpisodeStats, IntersectionObs, SimError, TscEnv};

/// Number of neighbor slots in the attention (4-neighborhood + self).
const NEIGHBOR_SLOTS: usize = 4;

/// CoLight hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoLightConfig {
    /// DQN backbone settings.
    pub dqn: DqnConfig,
    /// Embedding width of the graph attention.
    pub embed: usize,
    /// Action-space width.
    pub max_phases: usize,
    /// Reward scaling.
    pub reward_scale: f32,
    /// Scaled rewards are clamped to `[-reward_clip, 0]` (gridlock
    /// waits are unbounded).
    pub reward_clip: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for CoLightConfig {
    fn default() -> Self {
        CoLightConfig {
            dqn: DqnConfig::default(),
            embed: 32,
            max_phases: 4,
            reward_scale: 0.02,
            reward_clip: 5.0,
            seed: 0,
        }
    }
}

/// The attention + Q-head network (one shared instance).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct ColightNet {
    embed: Linear,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    out: Linear,
    head: Linear,
    embed_dim: usize,
}

impl ColightNet {
    fn new<R: Rng>(
        params: &mut Params,
        obs_dim: usize,
        embed_dim: usize,
        max_phases: usize,
        rng: &mut R,
    ) -> Self {
        let gain = Init::Orthogonal { gain: 2f32.sqrt() };
        ColightNet {
            embed: Linear::new(params, "colight.embed", obs_dim, embed_dim, gain, rng),
            wq: Linear::new(params, "colight.wq", embed_dim, embed_dim, gain, rng),
            wk: Linear::new(params, "colight.wk", embed_dim, embed_dim, gain, rng),
            wv: Linear::new(params, "colight.wv", embed_dim, embed_dim, gain, rng),
            out: Linear::new(params, "colight.out", 2 * embed_dim, embed_dim, gain, rng),
            head: Linear::new(
                params,
                "colight.q",
                embed_dim,
                max_phases,
                Init::Orthogonal { gain: 0.1 },
                rng,
            ),
            embed_dim,
        }
    }

    /// Forward for one agent: `rows` = `[self, n0..n3]` (5 × obs_dim,
    /// zero rows for missing slots), `mask` = `1 × 5` additive scores
    /// (0 for valid slots, −1e9 for missing). Returns the `1 ×
    /// max_phases` Q node.
    fn forward(&self, g: &mut Graph, params: &Params, rows: Tensor, mask: Tensor) -> Var {
        let x = g.input(rows);
        let e_pre = self.embed.forward(g, params, x);
        let e = g.relu(e_pre); // 5 × d
        let sel = g.input(Tensor::from_rows(&[&[1.0, 0.0, 0.0, 0.0, 0.0]]));
        let e_self = g.matmul(sel, e); // 1 × d
        let q = self.wq.forward(g, params, e_self); // 1 × d
        let k = self.wk.forward(g, params, e); // 5 × d
        let v = self.wv.forward(g, params, e); // 5 × d
        let kt = g.transpose(k); // d × 5
        let scores_raw = g.matmul(q, kt); // 1 × 5
        let scaled = g.scale(scores_raw, 1.0 / (self.embed_dim as f32).sqrt());
        let m = g.input(mask);
        let masked = g.add(scaled, m);
        let alpha = g.softmax(masked); // 1 × 5
        let ctx = g.matmul(alpha, v); // 1 × d
        let cat = g.concat_cols(e_self, ctx); // 1 × 2d
        let hid_pre = self.out.forward(g, params, cat);
        let hid = g.relu(hid_pre);
        self.head.forward(g, params, hid)
    }
}

/// The CoLight learner.
#[derive(Debug)]
pub struct CoLight {
    cfg: CoLightConfig,
    encoder: ObsEncoder,
    net: ColightNet,
    params: Params,
    target_params: Params,
    opt: Adam,
    replay: ReplayBuffer,
    num_agents: usize,
    phases_per_agent: Vec<usize>,
    env_steps: u64,
    episodes_trained: usize,
    rng: StdRng,
}

impl CoLight {
    /// Creates a CoLight learner for the environment's scenario.
    pub fn new(env: &TscEnv, cfg: CoLightConfig) -> Self {
        let scenario = env.scenario();
        let agents = scenario.agents();
        let encoder = ObsEncoder::new(
            &scenario.network,
            &agents,
            cfg.max_phases,
            ObsNorm::default(),
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = Params::new();
        let net = ColightNet::new(
            &mut params,
            encoder.local_dim(),
            cfg.embed,
            cfg.max_phases,
            &mut rng,
        );
        let target_params = params.clone();
        let opt = Adam::new(&params, cfg.dqn.lr);
        let phases_per_agent = scenario
            .signal_plans
            .iter()
            .map(|p| p.num_phases().min(cfg.max_phases))
            .collect();
        CoLight {
            replay: ReplayBuffer::new(cfg.dqn.replay_capacity),
            cfg,
            encoder,
            net,
            params,
            target_params,
            opt,
            num_agents: agents.len(),
            phases_per_agent,
            env_steps: 0,
            episodes_trained: 0,
            rng,
        }
    }

    /// Episodes trained so far.
    pub fn episodes_trained(&self) -> usize {
        self.episodes_trained
    }

    /// Stored replay transitions.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Flattens agent `a`'s attention state: `[self(d) | 4×nbr(d) |
    /// mask(5)]`.
    fn flatten_state(&self, all_obs: &[IntersectionObs], a: usize) -> Vec<f32> {
        let d = self.encoder.local_dim();
        let mut flat = self.encoder.encode_local(&all_obs[a]);
        let neighbors = self.encoder.one_hop(a);
        let mut mask = vec![0.0f32; 1 + NEIGHBOR_SLOTS];
        for slot in 0..NEIGHBOR_SLOTS {
            match neighbors.get(slot) {
                Some(&n) => flat.extend(self.encoder.encode_local(&all_obs[n])),
                None => {
                    flat.extend(std::iter::repeat_n(0.0, d));
                    mask[1 + slot] = -1e9;
                }
            }
        }
        flat.extend_from_slice(&mask);
        flat
    }

    /// Splits a flattened state back into the 5×d row block and mask.
    fn unflatten(&self, flat: &[f32]) -> (Tensor, Tensor) {
        let d = self.encoder.local_dim();
        let rows: Vec<&[f32]> = (0..=NEIGHBOR_SLOTS)
            .map(|i| &flat[i * d..(i + 1) * d])
            .collect();
        let block = Tensor::from_rows(&rows);
        let mask = Tensor::row_from_slice(&flat[(1 + NEIGHBOR_SLOTS) * d..]);
        (block, mask)
    }

    fn q_values(&self, params: &Params, flat: &[f32]) -> Vec<f32> {
        let (rows, mask) = self.unflatten(flat);
        let mut g = Graph::new();
        let q = self.net.forward(&mut g, params, rows, mask);
        g.value(q).row(0).to_vec()
    }

    fn epsilon(&self) -> f32 {
        LinearSchedule {
            start: self.cfg.dqn.eps_start,
            end: self.cfg.dqn.eps_end,
            decay_steps: self.cfg.dqn.eps_decay,
        }
        .value(self.env_steps)
    }

    /// Runs one training episode (exploration + per-step replay
    /// updates).
    ///
    /// # Errors
    ///
    /// Propagates environment failures.
    pub fn train_episode(&mut self, env: &mut TscEnv, seed: u64) -> Result<EpisodeStats, SimError> {
        let n = self.num_agents;
        let mut all_obs = env.reset(seed);
        let mut total_reward = 0.0f64;
        let mut steps = 0usize;
        loop {
            let eps = self.epsilon();
            let states: Vec<Vec<f32>> = (0..n).map(|a| self.flatten_state(&all_obs, a)).collect();
            let mut actions = vec![0usize; n];
            for a in 0..n {
                let np = self.phases_per_agent[a];
                actions[a] = if self.rng.gen::<f32>() < eps {
                    self.rng.gen_range(0..np)
                } else {
                    let q = self.q_values(&self.params, &states[a]);
                    q[..np]
                        .iter()
                        .enumerate()
                        .max_by(|x, y| x.1.partial_cmp(y.1).unwrap_or(std::cmp::Ordering::Equal))
                        .map(|(i, _)| i)
                        .unwrap_or(0)
                };
            }
            let step = env.step(&actions)?;
            for a in 0..n {
                self.replay.push(ReplayTransition {
                    obs: states[a].clone(),
                    action: actions[a],
                    reward: ((step.rewards[a] as f32) * self.cfg.reward_scale)
                        .clamp(-self.cfg.reward_clip, 0.0),
                    next_obs: self.flatten_state(&step.obs, a),
                    done: step.done,
                });
                total_reward += step.rewards[a];
            }
            self.env_steps += 1;
            steps += 1;
            if self.replay.len() >= self.cfg.dqn.warmup {
                self.learn_step();
            }
            if self
                .env_steps
                .is_multiple_of(self.cfg.dqn.target_sync as u64)
            {
                self.target_params.copy_from(&self.params);
            }
            all_obs = step.obs;
            if step.done {
                break;
            }
        }
        self.episodes_trained += 1;
        Ok(EpisodeStats {
            steps,
            total_reward,
            avg_waiting_time: env.sim().metrics().avg_waiting_time(),
            avg_travel_time: env.sim().avg_travel_time(),
            finished: env.sim().metrics().finished(),
            spawned: env.sim().metrics().spawned(),
        })
    }

    /// One minibatch gradient step on the Q regression.
    fn learn_step(&mut self) {
        let batch_size = self.cfg.dqn.batch_size;
        let gamma = self.cfg.dqn.gamma;
        let samples: Vec<ReplayTransition> = self
            .replay
            .sample(batch_size, &mut self.rng)
            .into_iter()
            .cloned()
            .collect();
        // TD targets from the target network.
        let targets: Vec<f32> = samples
            .iter()
            .map(|t| {
                if t.done {
                    t.reward
                } else {
                    let q = self.q_values(&self.target_params, &t.next_obs);
                    t.reward + gamma * q.iter().copied().fold(f32::NEG_INFINITY, f32::max)
                }
            })
            .collect();
        // One graph accumulating the per-sample squared errors.
        let mut g = Graph::new();
        let mut loss_acc: Option<Var> = None;
        for (t, &y) in samples.iter().zip(&targets) {
            let (rows, mask) = self.unflatten(&t.obs);
            let q = self.net.forward(&mut g, &self.params, rows, mask);
            let picked = g.gather_cols(q, vec![t.action]);
            let target = g.input(Tensor::full(1, 1, y));
            let d = g.sub(picked, target);
            let sq = g.square(d);
            loss_acc = Some(match loss_acc {
                None => sq,
                Some(acc) => g.add(acc, sq),
            });
        }
        if let Some(acc) = loss_acc {
            let loss = g.scale(acc, 1.0 / samples.len() as f32);
            g.backward(loss, &mut self.params);
            self.params.clip_grad_norm(self.cfg.dqn.max_grad_norm);
            self.opt.step(&mut self.params);
        }
    }

    /// Snapshots the current greedy policy.
    pub fn controller(&self) -> CoLightController {
        CoLightController {
            encoder: self.encoder.clone(),
            net: self.net.clone(),
            params: self.params.clone(),
            phases_per_agent: self.phases_per_agent.clone(),
            num_agents: self.num_agents,
        }
    }
}

/// The deployed CoLight policy (greedy over Q values).
#[derive(Debug)]
pub struct CoLightController {
    encoder: ObsEncoder,
    net: ColightNet,
    params: Params,
    phases_per_agent: Vec<usize>,
    num_agents: usize,
}

impl Controller for CoLightController {
    fn decide(&mut self, obs: &[IntersectionObs]) -> Vec<usize> {
        let d = self.encoder.local_dim();
        (0..self.num_agents)
            .map(|a| {
                let mut flat = self.encoder.encode_local(&obs[a]);
                let neighbors = self.encoder.one_hop(a);
                let mut mask = vec![0.0f32; 1 + NEIGHBOR_SLOTS];
                for slot in 0..NEIGHBOR_SLOTS {
                    match neighbors.get(slot) {
                        Some(&n) => flat.extend(self.encoder.encode_local(&obs[n])),
                        None => {
                            flat.extend(std::iter::repeat_n(0.0, d));
                            mask[1 + slot] = -1e9;
                        }
                    }
                }
                let rows: Vec<&[f32]> = (0..=NEIGHBOR_SLOTS)
                    .map(|i| &flat[i * d..(i + 1) * d])
                    .collect();
                let block = Tensor::from_rows(&rows);
                let mask_t = Tensor::row_from_slice(&mask);
                let mut g = Graph::new();
                let q = self.net.forward(&mut g, &self.params, block, mask_t);
                let np = self.phases_per_agent[a];
                g.value(q).row(0)[..np]
                    .iter()
                    .enumerate()
                    .max_by(|x, y| x.1.partial_cmp(y.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_sim::scenario::grid::{Grid, GridConfig};
    use tsc_sim::scenario::patterns::{flows, FlowPattern, PatternConfig};
    use tsc_sim::{EnvConfig, SimConfig};

    fn env() -> TscEnv {
        let grid = Grid::build(GridConfig {
            cols: 2,
            rows: 2,
            spacing: 150.0,
        })
        .unwrap();
        let f = flows(&grid, FlowPattern::Five, &PatternConfig::default()).unwrap();
        TscEnv::new(
            grid.scenario("t", f).unwrap(),
            SimConfig::default(),
            EnvConfig {
                decision_interval: 5,
                episode_horizon: 140,
            },
            0,
        )
        .unwrap()
    }

    fn small_cfg() -> CoLightConfig {
        CoLightConfig {
            embed: 8,
            dqn: DqnConfig {
                warmup: 16,
                batch_size: 8,
                target_sync: 10,
                ..DqnConfig::default()
            },
            ..CoLightConfig::default()
        }
    }

    #[test]
    fn attention_masks_missing_neighbors() {
        let e = env();
        let c = CoLight::new(&e, small_cfg());
        let obs = e.sim().observe_all();
        // In a 2x2 grid every agent has exactly 2 neighbors: slots 2,3
        // masked.
        let flat = c.flatten_state(&obs, 0);
        let d = c.encoder.local_dim();
        let mask = &flat[5 * d..];
        assert_eq!(mask.len(), 5);
        assert_eq!(mask[0], 0.0, "self slot always valid");
        assert_eq!(mask[1], 0.0);
        assert_eq!(mask[2], 0.0);
        assert_eq!(mask[3], -1e9);
        assert_eq!(mask[4], -1e9);
    }

    #[test]
    fn one_episode_fills_replay_and_learns() {
        let mut e = env();
        let mut c = CoLight::new(&e, small_cfg());
        let stats = c.train_episode(&mut e, 0).unwrap();
        assert!(stats.steps > 0);
        assert_eq!(c.replay_len(), stats.steps * 4);
        assert_eq!(c.episodes_trained(), 1);
    }

    #[test]
    fn q_values_have_action_dimension() {
        let e = env();
        let c = CoLight::new(&e, small_cfg());
        let obs = e.sim().observe_all();
        let q = c.q_values(&c.params, &c.flatten_state(&obs, 1));
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn controller_runs_episode() {
        let mut e = env();
        let mut c = CoLight::new(&e, small_cfg());
        c.train_episode(&mut e, 0).unwrap();
        let mut ctl = c.controller();
        let stats = e.run_episode(&mut ctl, 42).unwrap();
        assert!(stats.spawned > 0);
    }

    #[test]
    fn training_is_deterministic() {
        let run = || {
            let mut e = env();
            let mut c = CoLight::new(&e, small_cfg());
            c.train_episode(&mut e, 4).unwrap().total_reward
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn target_network_starts_in_sync_then_diverges() {
        let mut e = env();
        let mut cfg = small_cfg();
        cfg.dqn.target_sync = 100_000; // never re-sync within this test
        let mut c = CoLight::new(&e, cfg);
        let before: f32 = c
            .params
            .ids()
            .map(|id| c.params.value(id).norm() - c.target_params.value(id).norm())
            .sum();
        assert_eq!(before, 0.0);
        c.train_episode(&mut e, 0).unwrap();
        let after: f32 = c
            .params
            .ids()
            .map(|id| (c.params.value(id).norm() - c.target_params.value(id).norm()).abs())
            .sum();
        assert!(after > 0.0, "online net moved away from target");
    }
}
