//! Actuated signal control (paper §II-A): the classic gap-out /
//! extension logic used by real controllers. The phase holds its green
//! while detectors keep reporting demand (halting vehicles) on the
//! served approaches, up to a maximum green; when the served movements
//! gap out — or max-green expires — the controller advances to the next
//! phase with demand.
//!
//! This is the strongest *non-learning* baseline in the repository and
//! a useful sanity bound: an RL policy that cannot beat actuated
//! control has not learned anything interesting.

use tsc_sim::{Controller, IntersectionObs};

/// Per-intersection actuated gap-out controller.
#[derive(Debug, Clone)]
pub struct ActuatedController {
    /// Minimum green, in decision steps.
    min_green: usize,
    /// Maximum green, in decision steps.
    max_green: usize,
    /// Demand threshold (halting vehicles) below which a phase is
    /// considered gapped out.
    gap_threshold: f64,
    /// Per-agent: steps the current phase has been held.
    held: Vec<usize>,
    /// Per-agent: the phase currently served.
    current: Vec<usize>,
}

impl ActuatedController {
    /// Creates an actuated controller.
    ///
    /// # Panics
    ///
    /// Panics if `min_green > max_green` or `max_green == 0`.
    pub fn new(min_green: usize, max_green: usize, gap_threshold: f64) -> Self {
        assert!(min_green <= max_green, "min_green must be <= max_green");
        assert!(max_green > 0, "max_green must be positive");
        ActuatedController {
            min_green,
            max_green,
            gap_threshold,
            held: Vec::new(),
            current: Vec::new(),
        }
    }

    /// Demand proxy for the phase currently served at `obs`: the
    /// total halting count over incoming links (we cannot see
    /// per-phase demand through the `IntersectionObs` abstraction, so
    /// approaches with *any* queue keep the green alive; the max-green
    /// bound prevents starvation).
    fn served_demand(obs: &IntersectionObs) -> f64 {
        // Direction parity groups approaches per the four-phase plan:
        // phases 0/1 serve N-S (direction indices 0, 2), phases 2/3
        // serve E-W (indices 1, 3).
        let ns: f64 = obs
            .incoming
            .iter()
            .filter(|l| l.direction.index() % 2 == 0)
            .map(|l| l.halting)
            .sum();
        let ew: f64 = obs
            .incoming
            .iter()
            .filter(|l| l.direction.index() % 2 == 1)
            .map(|l| l.halting)
            .sum();
        if obs.current_phase < 2 {
            ns
        } else {
            ew
        }
    }

    /// Demand on the axis *not* currently served.
    fn cross_demand(obs: &IntersectionObs) -> f64 {
        let total: f64 = obs.incoming.iter().map(|l| l.halting).sum();
        total - Self::served_demand(obs)
    }
}

impl Default for ActuatedController {
    fn default() -> Self {
        // 2 steps ~ 14 s min green, 8 steps ~ 56 s max green.
        ActuatedController::new(2, 8, 0.5)
    }
}

impl Controller for ActuatedController {
    fn reset(&mut self) {
        self.held.clear();
        self.current.clear();
    }

    fn decide(&mut self, obs: &[IntersectionObs]) -> Vec<usize> {
        if self.held.len() != obs.len() {
            self.held = vec![0; obs.len()];
            self.current = vec![0; obs.len()];
        }
        obs.iter()
            .enumerate()
            .map(|(i, o)| {
                let n = o.num_phases.max(1);
                self.held[i] += 1;
                let held = self.held[i];
                let extend = held < self.min_green
                    || (held < self.max_green
                        && Self::served_demand(o) > self.gap_threshold
                        && Self::served_demand(o) >= Self::cross_demand(o) * 0.25);
                if !extend {
                    self.current[i] = (self.current[i] + 1) % n;
                    self.held[i] = 0;
                }
                self.current[i] % n
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_sim::{Direction, LinkId, LinkObs, NodeId};

    fn obs_with(ns_halt: f64, ew_halt: f64, phase: usize) -> IntersectionObs {
        IntersectionObs {
            node: NodeId(0),
            time: 0,
            incoming: vec![
                LinkObs {
                    link: LinkId(0),
                    direction: Direction::South,
                    count: ns_halt,
                    halting: ns_halt,
                    halting_by_movement: [0.0, ns_halt, 0.0],
                    head_wait: 0.0,
                },
                LinkObs {
                    link: LinkId(1),
                    direction: Direction::East,
                    count: ew_halt,
                    halting: ew_halt,
                    halting_by_movement: [0.0, ew_halt, 0.0],
                    head_wait: 0.0,
                },
            ],
            outgoing_counts: vec![],
            outgoing_links: vec![],
            current_phase: phase,
            num_phases: 4,
        }
    }

    #[test]
    fn extends_green_under_served_demand() {
        let mut c = ActuatedController::new(1, 10, 0.5);
        // Heavy NS demand while serving a NS phase: keep phase 0.
        let o = vec![obs_with(8.0, 0.0, 0)];
        for _ in 0..5 {
            assert_eq!(c.decide(&o), vec![0]);
        }
    }

    #[test]
    fn gaps_out_when_served_demand_clears() {
        let mut c = ActuatedController::new(1, 10, 0.5);
        let busy = vec![obs_with(8.0, 3.0, 0)];
        c.decide(&busy);
        c.decide(&busy);
        // Served axis empties, cross traffic waits: advance.
        let empty = vec![obs_with(0.0, 3.0, 0)];
        assert_eq!(c.decide(&empty), vec![1]);
    }

    #[test]
    fn max_green_prevents_starvation() {
        let mut c = ActuatedController::new(1, 3, 0.5);
        let o = vec![obs_with(8.0, 8.0, 0)];
        let mut phases = Vec::new();
        for _ in 0..8 {
            phases.push(c.decide(&o)[0]);
        }
        assert!(
            phases.contains(&1),
            "phase must advance despite endless demand: {phases:?}"
        );
    }

    #[test]
    fn min_green_is_respected() {
        let mut c = ActuatedController::new(3, 10, 0.5);
        // Nothing served, heavy cross demand — but min green holds.
        let o = vec![obs_with(0.0, 9.0, 0)];
        assert_eq!(c.decide(&o), vec![0]);
        assert_eq!(c.decide(&o), vec![0]);
        assert_eq!(c.decide(&o), vec![1], "advances after min green");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut c = ActuatedController::default();
        let o = vec![obs_with(1.0, 1.0, 0)];
        c.decide(&o);
        c.decide(&o);
        c.reset();
        assert_eq!(c.decide(&o), vec![0]);
    }
}
