//! Max-pressure control (Varaiya-style): at each decision, serve the
//! phase with the highest *pressure* — upstream queues minus downstream
//! occupancy over the movements the phase would release. Max-pressure
//! is the theoretical workhorse of the TSC literature (the paper's
//! pressure state, §III-A, descends from it) and is provably
//! throughput-optimal under idealized assumptions, making it a strong
//! model-free baseline.
//!
//! Through the `IntersectionObs` abstraction we see per-link halting
//! counts broken down by movement and downstream entry counts; phase
//! pressure is approximated per axis and turn class, matching the
//! four-phase plan of the grid scenarios.

use tsc_sim::{Controller, IntersectionObs, Movement};

/// Per-intersection greedy max-pressure controller.
#[derive(Debug, Clone)]
pub struct MaxPressureController {
    /// Minimum steps a chosen phase is held (prevents thrashing through
    /// yellow on every decision).
    min_hold: usize,
    held: Vec<usize>,
    current: Vec<usize>,
}

impl MaxPressureController {
    /// Creates a max-pressure controller holding each chosen phase at
    /// least `min_hold` decisions.
    ///
    /// # Panics
    ///
    /// Panics if `min_hold` is zero.
    pub fn new(min_hold: usize) -> Self {
        assert!(min_hold > 0, "min_hold must be positive");
        MaxPressureController {
            min_hold,
            held: Vec::new(),
            current: Vec::new(),
        }
    }

    /// Pressure of the standard four phases: (NS through+right,
    /// NS left, EW through+right, EW left), computed from per-movement
    /// halting counts minus mean downstream occupancy.
    fn phase_pressures(obs: &IntersectionObs) -> [f64; 4] {
        let mut p = [0.0f64; 4];
        let downstream: f64 = if obs.outgoing_counts.is_empty() {
            0.0
        } else {
            obs.outgoing_counts.iter().sum::<f64>() / obs.outgoing_counts.len() as f64
        };
        for link in &obs.incoming {
            let ns = link.direction.index() % 2 == 0;
            let through_right = link.halting_by_movement[Movement::Through.index()]
                + link.halting_by_movement[Movement::Right.index()];
            let left = link.halting_by_movement[Movement::Left.index()];
            if ns {
                p[0] += through_right;
                p[1] += left;
            } else {
                p[2] += through_right;
                p[3] += left;
            }
        }
        for v in &mut p {
            *v -= downstream;
        }
        p
    }
}

impl Default for MaxPressureController {
    fn default() -> Self {
        MaxPressureController::new(2)
    }
}

impl Controller for MaxPressureController {
    fn reset(&mut self) {
        self.held.clear();
        self.current.clear();
    }

    fn decide(&mut self, obs: &[IntersectionObs]) -> Vec<usize> {
        if self.held.len() != obs.len() {
            self.held = vec![0; obs.len()];
            self.current = vec![0; obs.len()];
        }
        obs.iter()
            .enumerate()
            .map(|(i, o)| {
                let n = o.num_phases.max(1);
                self.held[i] += 1;
                if self.held[i] >= self.min_hold {
                    let p = Self::phase_pressures(o);
                    let best = p[..n.min(4)]
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .map(|(k, _)| k)
                        .unwrap_or(0);
                    if best != self.current[i] {
                        self.current[i] = best;
                        self.held[i] = 0;
                    }
                }
                self.current[i] % n
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_sim::{Direction, LinkId, LinkObs, NodeId};

    fn obs(ns_through: f64, ns_left: f64, ew_through: f64, ew_left: f64) -> IntersectionObs {
        IntersectionObs {
            node: NodeId(0),
            time: 0,
            incoming: vec![
                LinkObs {
                    link: LinkId(0),
                    direction: Direction::South,
                    count: ns_through + ns_left,
                    halting: ns_through + ns_left,
                    halting_by_movement: [ns_left, ns_through, 0.0],
                    head_wait: 0.0,
                },
                LinkObs {
                    link: LinkId(1),
                    direction: Direction::West,
                    count: ew_through + ew_left,
                    halting: ew_through + ew_left,
                    halting_by_movement: [ew_left, ew_through, 0.0],
                    head_wait: 0.0,
                },
            ],
            outgoing_counts: vec![0.0],
            outgoing_links: vec![LinkId(2)],
            current_phase: 0,
            num_phases: 4,
        }
    }

    #[test]
    fn serves_the_heaviest_phase() {
        let mut c = MaxPressureController::new(1);
        assert_eq!(c.decide(&[obs(9.0, 0.0, 1.0, 0.0)]), vec![0]);
        c.reset();
        assert_eq!(c.decide(&[obs(0.0, 7.0, 1.0, 0.0)]), vec![1]);
        c.reset();
        assert_eq!(c.decide(&[obs(1.0, 0.0, 9.0, 0.0)]), vec![2]);
        c.reset();
        assert_eq!(c.decide(&[obs(0.0, 1.0, 0.0, 6.0)]), vec![3]);
    }

    #[test]
    fn min_hold_prevents_thrashing() {
        let mut c = MaxPressureController::new(3);
        // First decision establishes phase 0 (pressures equal, tie ->
        // index 0); demand then shifts but the hold keeps phase 0.
        assert_eq!(c.decide(&[obs(5.0, 0.0, 0.0, 0.0)]), vec![0]);
        assert_eq!(c.decide(&[obs(0.0, 0.0, 9.0, 0.0)]), vec![0]);
        assert_eq!(c.decide(&[obs(0.0, 0.0, 9.0, 0.0)]), vec![2]);
    }

    #[test]
    fn tracks_shifting_demand_over_time() {
        let mut c = MaxPressureController::new(1);
        let seq = [
            obs(9.0, 0.0, 0.0, 0.0),
            obs(0.0, 0.0, 9.0, 0.0),
            obs(0.0, 8.0, 0.0, 0.0),
        ];
        let phases: Vec<usize> = seq
            .iter()
            .map(|o| c.decide(std::slice::from_ref(o))[0])
            .collect();
        assert_eq!(phases, vec![0, 2, 1]);
    }
}
