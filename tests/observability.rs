//! Observability integration tests — the acceptance criteria of the
//! `tsc-obs` layer:
//!
//! * attaching the run logger and enabling span tracing changes
//!   **nothing** about training (bit-identical final parameters and
//!   reward history);
//! * the JSONL stream carries the manifest, one update record per PPO
//!   round, and the sentinel's divergence/rollback and worker-panic
//!   events;
//! * a write fault mid-record never corrupts prior records, and the
//!   reader skips the torn tail with a typed warning.

use pairuplight::{FaultPlan, PairUpLight, PairUpLightConfig};
use tsc_obs::{read_jsonl, EventSink, Json, JsonlWarning, WriteFault};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, TscEnv};

fn tiny_env() -> TscEnv {
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 150.0,
    })
    .expect("grid");
    let scenario = patterns::grid_scenario(&grid, FlowPattern::Five, &PatternConfig::default())
        .expect("scenario");
    TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: 140,
        },
        0,
    )
    .expect("env")
}

fn small_cfg() -> PairUpLightConfig {
    let mut cfg = PairUpLightConfig {
        hidden: 12,
        lstm_hidden: 12,
        ..Default::default()
    };
    cfg.ppo.epochs = 2;
    cfg.ppo.minibatch = 32;
    cfg
}

fn param_bits(model: &PairUpLight) -> Vec<u32> {
    model
        .parameter_vector()
        .iter()
        .map(|p| p.to_bits())
        .collect()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pairuplight-obs-tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(format!("{name}-{}", std::process::id()))
}

fn updates(records: &[Json]) -> Vec<&Json> {
    records
        .iter()
        .filter(|r| r.get_str("type") == Some("update"))
        .collect()
}

/// The tentpole guarantee: instrumentation is out-of-band. A run with
/// the JSONL logger attached AND span tracing enabled produces exactly
/// the parameters and rewards of a bare run.
#[test]
fn instrumented_training_is_bit_identical_to_uninstrumented() {
    const EPISODES: usize = 6;
    let path = tmp("bitident.jsonl");

    let mut env = tiny_env();
    let mut bare = PairUpLight::new(&env, small_cfg());
    let bare_history = bare.train(&mut env, EPISODES, 7, |_| {}).expect("train");

    let mut env = tiny_env();
    let instrumented = PairUpLight::new(&env, small_cfg());
    instrumented.attach_obs(EventSink::create(&path).expect("sink"));
    tsc_obs::span::set_enabled(true);
    let mut instrumented = instrumented;
    let inst_history = instrumented
        .train(&mut env, EPISODES, 7, |_| {})
        .expect("train");
    tsc_obs::span::set_enabled(false);
    instrumented.finish_obs().expect("logger attached");

    assert_eq!(
        param_bits(&bare),
        param_bits(&instrumented),
        "final parameters must be bit-identical"
    );
    let rewards = |h: &[pairuplight::TrainEpisode]| -> Vec<u64> {
        h.iter().map(|e| e.stats.total_reward.to_bits()).collect()
    };
    assert_eq!(rewards(&bare_history), rewards(&inst_history));
    std::fs::remove_file(&path).ok();
}

/// The stream schema: manifest first (fingerprint, seed, build info),
/// one `update` record per PPO round with finite diagnostics, and the
/// `summary` record last.
#[test]
fn run_stream_has_manifest_updates_and_summary() {
    const EPISODES: usize = 5;
    let path = tmp("stream.jsonl");
    let mut env = tiny_env();
    let model = PairUpLight::new(&env, small_cfg());
    model.attach_obs(EventSink::create(&path).expect("sink"));
    let mut model = model;
    model.train(&mut env, EPISODES, 3, |_| {}).expect("train");
    let metrics = model.finish_obs().expect("logger attached");

    let (records, warnings) = read_jsonl(&path).expect("read stream");
    assert!(
        warnings.is_empty(),
        "clean shutdown leaves no torn tail: {warnings:?}"
    );

    let manifest = &records[0];
    assert_eq!(manifest.get_str("type"), Some("manifest"));
    assert_eq!(manifest.get_str("schema"), Some("pairuplight-obs v1"));
    assert_eq!(
        manifest.get_str("fingerprint").map(str::len),
        Some(16),
        "fingerprint is a 16-hex-digit string"
    );
    assert_eq!(manifest.get_str("seed"), Some("0"));
    assert_eq!(manifest.get_num("num_agents"), Some(4.0));
    let build = manifest.get("build").expect("build info");
    assert!(build.get_str("version").is_some());
    assert!(build.get_str("git").is_some());

    let ups = updates(&records);
    assert!(ups.len() >= EPISODES, "one update per round: {}", ups.len());
    for (i, u) in ups.iter().enumerate() {
        assert_eq!(u.get_num("round"), Some(i as f64));
        for key in [
            "policy_loss",
            "value_loss",
            "entropy",
            "grad_norm",
            "approx_kl",
            "clip_fraction",
            "mean_reward",
            "mean_queue",
            "mean_wait_s",
        ] {
            let v = u
                .get_num(key)
                .unwrap_or_else(|| panic!("update missing {key}"));
            assert!(v.is_finite(), "{key} = {v}");
        }
        assert!(u.get_num("mean_queue").unwrap() >= 0.0);
        assert!(u.get_num("update_wall_us").unwrap() > 0.0);
    }
    assert_eq!(records.last().unwrap().get_str("type"), Some("summary"));
    assert_eq!(metrics.counter("train.updates"), ups.len() as u64);
    std::fs::remove_file(&path).ok();
}

/// Satellite: the divergence sentinel streams NaN-gradient trips and
/// rollbacks with the triggering round index.
#[test]
fn divergence_and_rollback_events_are_streamed() {
    let path = tmp("diverge.jsonl");
    let mut env = tiny_env();
    let model = PairUpLight::new(&env, small_cfg());
    model.inject_faults(FaultPlan::new().nan_gradient(1));
    model.attach_obs(EventSink::create(&path).expect("sink"));
    let mut model = model;
    let history = model
        .train_checkpointed(&mut env, 4, 11, None, |_| {})
        .expect("training recovers from the injected NaN");
    assert_eq!(history.len(), 4);
    let metrics = model.finish_obs().expect("logger attached");
    assert_eq!(metrics.counter("train.divergences"), 1);
    assert_eq!(metrics.counter("train.rollbacks"), 1);

    let (records, warnings) = read_jsonl(&path).expect("read stream");
    assert!(warnings.is_empty(), "{warnings:?}");
    let div = records
        .iter()
        .find(|r| r.get_str("type") == Some("divergence"))
        .expect("divergence record");
    assert_eq!(div.get_num("round"), Some(1.0), "triggering update index");
    let reason = div.get_str("reason").expect("reason");
    assert!(
        reason.to_lowercase().contains("finite") || reason.to_lowercase().contains("nan"),
        "reason names the NaN: {reason}"
    );
    let rb = records
        .iter()
        .find(|r| r.get_str("type") == Some("rollback"))
        .expect("rollback record");
    assert_eq!(rb.get_num("round"), Some(1.0));
    assert_eq!(rb.get("will_retry"), Some(&Json::Bool(true)));
    // The retried round still produced an update record, so the stream
    // shows 4 updates for rounds 0..4 plus the aborted attempt's one.
    assert!(updates(&records).len() >= 4);
    std::fs::remove_file(&path).ok();
}

/// Satellite: retries of panicked rollout workers are counted and
/// carry (round, env, retry index).
#[test]
fn worker_panic_retries_are_streamed_and_counted() {
    let path = tmp("panic.jsonl");
    let mut env = tiny_env();
    let model = PairUpLight::new(&env, small_cfg());
    model.inject_faults(FaultPlan::new().panic_worker(0, 0).panic_worker(2, 0));
    model.attach_obs(EventSink::create(&path).expect("sink"));
    let mut model = model;
    model
        .train_checkpointed(&mut env, 3, 5, None, |_| {})
        .expect("training retries panicked workers");
    let metrics = model.finish_obs().expect("logger attached");
    assert_eq!(metrics.counter("train.worker_panic_retries"), 2);

    let (records, warnings) = read_jsonl(&path).expect("read stream");
    assert!(warnings.is_empty(), "{warnings:?}");
    let retries: Vec<&Json> = records
        .iter()
        .filter(|r| r.get_str("type") == Some("worker_panic_retry"))
        .collect();
    assert_eq!(retries.len(), 2);
    assert_eq!(retries[0].get_num("round"), Some(0.0));
    assert_eq!(retries[0].get_num("env"), Some(0.0));
    assert_eq!(retries[0].get_num("retries"), Some(1.0));
    assert_eq!(retries[1].get_num("round"), Some(2.0));
    std::fs::remove_file(&path).ok();
}

/// Satellite: a write fault tearing a record mid-line must not corrupt
/// prior records, must not interrupt training, and the reader must
/// skip the torn tail with a typed warning.
#[test]
fn torn_write_mid_training_preserves_prior_records() {
    let path = tmp("torn.jsonl");
    let mut env = tiny_env();
    let model = PairUpLight::new(&env, small_cfg());
    let mut sink = EventSink::create(&path).expect("sink");
    // Manifest + train_start + two updates land, the third update tears.
    sink.inject_write_fault(WriteFault {
        after_records: 4,
        keep_bytes: 17,
    });
    model.attach_obs(sink);
    let mut model = model;
    let history = model
        .train(&mut env, 5, 9, |_| {})
        .expect("a logging failure must never fail training");
    assert_eq!(history.len(), 5, "training ran to completion");
    assert!(
        model.finish_obs().is_some(),
        "logger still attached (quiesced)"
    );

    let (records, warnings) = read_jsonl(&path).expect("read stream");
    assert_eq!(records.len(), 4, "all records before the fault survive");
    assert_eq!(records[0].get_str("type"), Some("manifest"));
    assert_eq!(updates(&records).len(), 2);
    assert_eq!(warnings.len(), 1, "exactly the torn tail: {warnings:?}");
    assert!(
        matches!(warnings[0], JsonlWarning::TornTail { .. }),
        "typed torn-tail warning: {warnings:?}"
    );
    std::fs::remove_file(&path).ok();
}
