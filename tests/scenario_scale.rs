//! Compiled-scenario integration: training and stepping on *non-grid*
//! topologies produced by the tsc-scenario compiler, up to city scale.
//!
//! The paper's experiments live on the 6×6 grid and Monaco; these
//! tests are the evidence that the whole stack — pairing, training,
//! serving-side stepping — is topology-agnostic: it consumes whatever
//! network the compiler emits.

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_baselines::MaxPressureController;
use tsc_scenario::{city_spec, compile, corridor_spec, ring_spec};
use tsc_sim::{Controller, EnvConfig, SimConfig};

fn env_cfg(horizon: u32) -> EnvConfig {
    EnvConfig {
        decision_interval: 5,
        episode_horizon: horizon,
    }
}

fn tiny_net() -> PairUpLightConfig {
    let mut cfg = PairUpLightConfig {
        hidden: 8,
        lstm_hidden: 8,
        ..Default::default()
    };
    cfg.ppo.epochs = 1;
    cfg
}

/// PairUpLight trains end-to-end on a compiled arterial corridor — a
/// line graph, not a lattice — with uniform four-phase plans, so
/// pairing and parameter sharing both engage off-grid.
#[test]
fn pairuplight_trains_on_compiled_corridor() {
    let compiled = compile(&corridor_spec(6, 3)).expect("corridor compiles");
    let mut env = compiled
        .env(SimConfig::default(), env_cfg(400), 0)
        .expect("env");
    assert_eq!(env.num_agents(), 6);
    let mut model = PairUpLight::new(&env, tiny_net());
    let ep = model.train_episode(&mut env, 0).expect("episode");
    assert!(ep.stats.spawned > 0, "corridor demand must produce traffic");
}

/// PairUpLight trains on a compiled ring road — a cycle graph with
/// three-way intersections (heterogeneous phase sets, so no parameter
/// sharing), the same regime as the paper's Monaco experiment but on a
/// different generator.
#[test]
fn pairuplight_trains_on_compiled_ring() {
    let compiled = compile(&ring_spec(12, 5)).expect("ring compiles");
    let mut env = compiled
        .env(SimConfig::default(), env_cfg(400), 0)
        .expect("env");
    let mut cfg = tiny_net();
    cfg.parameter_sharing = false;
    let mut model = PairUpLight::new(&env, cfg);
    let ep = model.train_episode(&mut env, 0).expect("episode");
    assert!(ep.stats.spawned > 0, "ring demand must produce traffic");
}

/// A 1000+ intersection compiled city steps end-to-end on the event
/// core through the gym environment: observations arrive for every
/// agent, MaxPressure actions apply, rewards come back, and vehicle
/// conservation holds. (The training variant is `#[ignore]`d below —
/// this one stays tier-1 fast by not building a model.)
#[test]
fn thousand_intersection_city_steps_end_to_end() {
    let compiled = compile(&city_spec(1000, 42)).expect("city-1024 compiles");
    assert!(compiled.num_agents() >= 1000);
    let mut env = compiled
        .env(SimConfig::default(), env_cfg(3600), 42)
        .expect("env");
    let mut controller = MaxPressureController::default();
    controller.reset();
    let mut obs = env.reset(42);
    assert_eq!(obs.len(), compiled.num_agents());
    for _ in 0..3 {
        let raw = controller.decide(&obs);
        let actions: Vec<usize> = raw
            .iter()
            .enumerate()
            .map(|(i, &a)| env.clamp_action(i, a))
            .collect();
        let step = env.step(&actions).expect("step");
        assert_eq!(step.rewards.len(), compiled.num_agents());
        obs = step.obs;
    }
    let sim = env.sim();
    assert_eq!(
        sim.metrics().spawned(),
        sim.active_vehicles() + sim.metrics().finished(),
        "conservation at city scale"
    );
    assert_eq!(env.scenario_fingerprint(), compiled.scenario.fingerprint());
}

/// Full training on the 1000-intersection corridor. Too slow for
/// tier-1 (a per-agent model bank at this scale takes minutes); run
/// with `cargo test -- --ignored` when touching the compiler or the
/// training loop.
#[test]
#[ignore = "city-scale training takes minutes; tier-1 covers stepping"]
fn thousand_intersection_corridor_trains() {
    let compiled = compile(&corridor_spec(1000, 7)).expect("corridor-1000 compiles");
    let mut env = compiled
        .env(SimConfig::default(), env_cfg(200), 0)
        .expect("env");
    assert_eq!(env.num_agents(), 1000);
    let mut model = PairUpLight::new(&env, tiny_net());
    let ep = model.train_episode(&mut env, 0).expect("episode");
    assert!(ep.stats.steps > 0);
}
