//! Cross-crate integration tests: the full stack — simulator, neural
//! networks, RL algorithms, PairUpLight, baselines, and the experiment
//! harness — exercised together on small scenarios.

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_baselines::{CoLight, CoLightConfig, FixedTimeController, Ma2c, Ma2cConfig};
use tsc_bench::eval::{evaluate, EvalConfig};
use tsc_bench::models::{train_model, ModelKind, TrainSetup};
use tsc_scenario::{compile, monaco_spec, DemandProgram, TopologySpec};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, Scenario, SimConfig, TscEnv};

fn small_grid_scenario(pattern: FlowPattern) -> Scenario {
    let grid = Grid::build(GridConfig {
        cols: 3,
        rows: 3,
        spacing: 200.0,
    })
    .expect("grid");
    patterns::grid_scenario(&grid, pattern, &PatternConfig::default()).expect("scenario")
}

fn env_for(scenario: Scenario, horizon: u32) -> TscEnv {
    TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: horizon,
        },
        0,
    )
    .expect("env")
}

/// Data-parallel collection is bit-for-bit equivalent to serial
/// collection: training with `num_envs = 4` on scoped worker threads
/// must produce exactly the same network parameters and episode
/// returns as the serial driver, because per-replica seeds are derived
/// (not drawn from shared state) and rollouts merge in env-index
/// order regardless of thread completion order.
#[test]
fn parallel_matches_serial() {
    let run = |parallel: bool| {
        let grid = Grid::build(GridConfig {
            cols: 2,
            rows: 2,
            spacing: 150.0,
        })
        .expect("grid");
        let scenario = patterns::grid_scenario(&grid, FlowPattern::Five, &PatternConfig::default())
            .expect("scenario");
        let mut env = env_for(scenario, 250);
        let mut cfg = PairUpLightConfig {
            hidden: 12,
            lstm_hidden: 12,
            num_envs: 4,
            parallel_rollouts: parallel,
            ..Default::default()
        };
        cfg.ppo.epochs = 2;
        cfg.ppo.minibatch = 32;
        let mut model = PairUpLight::new(&env, cfg);
        // 8 episodes = 2 rounds of 4 replicas each.
        let history = model.train(&mut env, 8, 42, |_| {}).expect("train");
        let rewards: Vec<u64> = history
            .iter()
            .map(|e| e.stats.total_reward.to_bits())
            .collect();
        let params: Vec<u32> = model
            .parameter_vector()
            .iter()
            .map(|p| p.to_bits())
            .collect();
        (history.len(), rewards, params)
    };
    let threaded = run(true);
    let serial = run(false);
    assert_eq!(threaded.0, 8, "2 rounds x 4 envs");
    assert_eq!(
        threaded.1, serial.1,
        "episode returns must match bit-for-bit"
    );
    assert_eq!(
        threaded.2, serial.2,
        "network parameters must match bit-for-bit"
    );
}

/// The headline property: a briefly-trained PairUpLight must beat
/// fixed-time control on light uniform traffic.
///
/// Tier-2 (`--ignored`): trains 15 episodes at horizon 1200, which
/// dominates suite runtime; `pairuplight_smoke_end_to_end` keeps the
/// same pipeline covered in tier-1.
#[test]
#[ignore = "slow training run (tier-2); see README §Testing"]
fn trained_pairuplight_beats_fixed_time_on_light_traffic() {
    let scenario = small_grid_scenario(FlowPattern::Five);
    let mut env = env_for(scenario.clone(), 1200);
    let mut cfg = PairUpLightConfig {
        hidden: 24,
        lstm_hidden: 24,
        eps_decay_episodes: 8,
        ..Default::default()
    };
    cfg.ppo.epochs = 2;
    let mut model = PairUpLight::new(&env, cfg);
    for i in 0..15 {
        model.train_episode(&mut env, i).expect("episode");
    }
    let eval_cfg = EvalConfig {
        horizon: 1200,
        drain_cap: 3600,
        seed: 99,
    };
    let mut trained = model.controller();
    let rl = evaluate(&mut trained, &scenario, SimConfig::default(), &eval_cfg).expect("rl");
    let mut fixed = FixedTimeController::default();
    let ft = evaluate(&mut fixed, &scenario, SimConfig::default(), &eval_cfg).expect("ft");
    assert!(
        rl.avg_waiting_time < ft.avg_waiting_time,
        "PairUpLight {:.1}s must beat FixedTime {:.1}s",
        rl.avg_waiting_time,
        ft.avg_waiting_time
    );
    assert!(rl.completion_rate > 0.9, "light traffic must drain: {rl:?}");
}

/// Tier-1 smoke variant of the two slow training properties above:
/// a short multi-env training run must execute the full
/// explore/merge/update/evaluate pipeline and produce sane,
/// finite diagnostics. It deliberately does *not* assert performance
/// against fixed-time — four short episodes are not enough signal, and
/// a flaky threshold would be worse than the honest tier-2 split (the
/// performance claims live in the `#[ignore]`d tests).
#[test]
fn pairuplight_smoke_end_to_end() {
    let scenario = small_grid_scenario(FlowPattern::Five);
    let mut env = env_for(scenario.clone(), 400);
    let mut cfg = PairUpLightConfig {
        hidden: 12,
        lstm_hidden: 12,
        num_envs: 2,
        ..Default::default()
    };
    cfg.ppo.epochs = 1;
    let mut model = PairUpLight::new(&env, cfg);
    let history = model.train(&mut env, 4, 7, |_| {}).expect("train");
    assert_eq!(history.len(), 4);
    for ep in &history {
        assert!(ep.stats.spawned > 0);
        assert!(ep.stats.total_reward.is_finite());
        assert!(ep.policy_loss.is_finite());
        assert!(ep.value_loss.is_finite());
        assert!(ep.entropy > 0.0, "policy must stay stochastic: {ep:?}");
    }
    let eval_cfg = EvalConfig {
        horizon: 400,
        drain_cap: 1200,
        seed: 99,
    };
    let mut trained = model.controller();
    let r = evaluate(&mut trained, &scenario, SimConfig::default(), &eval_cfg).expect("eval");
    assert!(r.spawned > 0);
    assert!(r.avg_waiting_time.is_finite() && r.avg_waiting_time >= 0.0);
}

/// Training must reduce waiting time relative to the untrained policy.
///
/// Tier-2 (`--ignored`): 14 episodes at horizon 1200.
#[test]
#[ignore = "slow training run (tier-2); see README §Testing"]
fn pairuplight_training_improves_over_episodes() {
    let scenario = small_grid_scenario(FlowPattern::Five);
    let mut env = env_for(scenario, 1200);
    let mut cfg = PairUpLightConfig {
        hidden: 24,
        lstm_hidden: 24,
        eps_decay_episodes: 8,
        ..Default::default()
    };
    cfg.ppo.epochs = 2;
    let mut model = PairUpLight::new(&env, cfg);
    let mut waits = Vec::new();
    for i in 0..14 {
        waits.push(
            model
                .train_episode(&mut env, i)
                .expect("episode")
                .stats
                .avg_waiting_time,
        );
    }
    let early: f64 = waits[..3].iter().sum::<f64>() / 3.0;
    let late: f64 = waits[waits.len() - 3..].iter().sum::<f64>() / 3.0;
    assert!(
        late < early,
        "late waits {late:.1}s must improve on early {early:.1}s ({waits:?})"
    );
}

/// All five Table II models must train and evaluate through the shared
/// harness on the same environment without panicking, and their
/// evaluation must produce sane metrics.
#[test]
fn harness_runs_all_models_end_to_end() {
    let scenario = small_grid_scenario(FlowPattern::One);
    let setup = TrainSetup {
        hidden: 12,
        lstm_hidden: 12,
        episodes: 2,
        ppo_epochs: 1,
        seed: 3,
        heterogeneous: false,
    };
    let eval_cfg = EvalConfig {
        horizon: 600,
        drain_cap: 1800,
        seed: 5,
    };
    for kind in ModelKind::TABLE2 {
        let mut env = env_for(scenario.clone(), 600);
        let mut trained =
            train_model(kind, &mut env, &setup, |_| {}).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        let r = evaluate(
            &mut *trained.controller,
            &scenario,
            SimConfig::default(),
            &eval_cfg,
        )
        .expect("evaluate");
        assert!(r.spawned > 0, "{kind:?} spawned nothing");
        assert!(r.avg_travel_time > 0.0, "{kind:?} has zero travel time");
        assert!(
            r.avg_travel_time < 3600.0,
            "{kind:?} exceeded drain cap: {r:?}"
        );
    }
}

/// The Monaco heterogeneous scenario trains per-agent PairUpLight and
/// MA2C (both without parameter sharing).
#[test]
fn heterogeneous_monaco_trains_without_sharing() {
    let mut spec = monaco_spec(2);
    spec.topology = TopologySpec::City {
        cols: 3,
        rows: 3,
        spacing: 250.0,
        edge_removal: 0.18,
        two_lane_frac: 0.4,
        jitter: 0.18,
    };
    spec.demand = vec![DemandProgram::Conflicts {
        flows: 4,
        peak_rate: 975.0,
        horizon: 2700.0,
    }];
    let scenario = compile(&spec).expect("monaco").scenario;
    let mut env = env_for(scenario, 400);
    let mut pcfg = PairUpLightConfig {
        parameter_sharing: false,
        hidden: 8,
        lstm_hidden: 8,
        ..Default::default()
    };
    pcfg.ppo.epochs = 1;
    let mut model = PairUpLight::new(&env, pcfg);
    let ep = model.train_episode(&mut env, 0).expect("episode");
    assert!(ep.stats.spawned > 0);
    let mcfg = Ma2cConfig {
        hidden: 8,
        lstm_hidden: 8,
        ..Ma2cConfig::default()
    };
    let mut ma2c = Ma2c::new(&env, mcfg);
    let stats = ma2c.train_episode(&mut env, 0).expect("ma2c episode");
    assert!(stats.spawned > 0);
}

/// Determinism across the whole stack: same seeds, same results, for
/// every trainable model family.
#[test]
fn full_stack_determinism() {
    let run = || {
        let scenario = small_grid_scenario(FlowPattern::One);
        let mut env = env_for(scenario, 400);
        let mut cfg = PairUpLightConfig {
            hidden: 8,
            lstm_hidden: 8,
            ..Default::default()
        };
        cfg.ppo.epochs = 1;
        let mut model = PairUpLight::new(&env, cfg);
        let a = model
            .train_episode(&mut env, 0)
            .expect("ep")
            .stats
            .total_reward;
        let ccfg = CoLightConfig {
            embed: 8,
            ..CoLightConfig::default()
        };
        let mut colight = CoLight::new(&env, ccfg);
        let b = colight.train_episode(&mut env, 0).expect("ep").total_reward;
        (a, b)
    };
    assert_eq!(run(), run());
}

/// A policy trained on clean sensors still runs (and still beats doing
/// nothing) under detector degradation — the robustness extension.
///
/// Tier-2 (`--ignored`): 10 episodes at horizon 1000. Tier-1 coverage
/// of degraded sensing: `degraded_sensors_smoke` below.
#[test]
#[ignore = "slow training run (tier-2); see README §Testing"]
fn trained_policy_survives_sensor_degradation() {
    let scenario = small_grid_scenario(FlowPattern::Five);
    let mut env = env_for(scenario.clone(), 1000);
    let mut cfg = PairUpLightConfig {
        hidden: 16,
        lstm_hidden: 16,
        eps_decay_episodes: 6,
        ..Default::default()
    };
    cfg.ppo.epochs = 1;
    let mut model = PairUpLight::new(&env, cfg);
    for i in 0..10 {
        model.train_episode(&mut env, i).expect("episode");
    }
    let degraded = SimConfig {
        detector: tsc_sim::DetectorConfig {
            range: 50.0,
            noise: 0.3,
            dropout: 0.2,
        },
        ..SimConfig::default()
    };
    let eval_cfg = EvalConfig {
        horizon: 1000,
        drain_cap: 3000,
        seed: 77,
    };
    let mut trained = model.controller();
    let r = evaluate(&mut trained, &scenario, degraded, &eval_cfg).expect("degraded eval");
    assert!(r.spawned > 0);
    assert!(r.avg_travel_time.is_finite());
    assert!(
        r.completion_rate > 0.5,
        "policy keeps traffic moving under degraded sensing: {r:?}"
    );
}

/// Tier-1 smoke variant of the robustness property: a minimally
/// trained policy must evaluate cleanly (finite metrics, traffic
/// spawns) under degraded detectors. The completion-rate performance
/// bar stays in the tier-2 test above.
#[test]
fn degraded_sensors_smoke() {
    let scenario = small_grid_scenario(FlowPattern::Five);
    let mut env = env_for(scenario.clone(), 400);
    let mut cfg = PairUpLightConfig {
        hidden: 12,
        lstm_hidden: 12,
        ..Default::default()
    };
    cfg.ppo.epochs = 1;
    let mut model = PairUpLight::new(&env, cfg);
    for i in 0..2 {
        model.train_episode(&mut env, i).expect("episode");
    }
    let degraded = SimConfig {
        detector: tsc_sim::DetectorConfig {
            range: 50.0,
            noise: 0.3,
            dropout: 0.2,
        },
        ..SimConfig::default()
    };
    let eval_cfg = EvalConfig {
        horizon: 400,
        drain_cap: 1200,
        seed: 77,
    };
    let mut trained = model.controller();
    let r = evaluate(&mut trained, &scenario, degraded, &eval_cfg).expect("degraded eval");
    assert!(r.spawned > 0);
    assert!(r.avg_travel_time.is_finite() && r.avg_travel_time > 0.0);
    assert!(r.avg_waiting_time.is_finite());
}

/// Rewards and observations stay finite under extreme oversaturation
/// (no NaN/Inf leaks into training).
#[test]
fn no_nan_under_oversaturation() {
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 150.0,
    })
    .expect("grid");
    let cfg = PatternConfig {
        peak_rate: 2000.0,
        base_rate: 1000.0,
        ..PatternConfig::default()
    };
    let scenario = patterns::grid_scenario(&grid, FlowPattern::Two, &cfg).expect("scenario");
    let mut env = env_for(scenario, 900);
    let mut pcfg = PairUpLightConfig {
        hidden: 8,
        lstm_hidden: 8,
        ..Default::default()
    };
    pcfg.ppo.epochs = 1;
    let mut model = PairUpLight::new(&env, pcfg);
    let ep = model.train_episode(&mut env, 1).expect("episode");
    assert!(ep.stats.total_reward.is_finite());
    assert!(ep.policy_loss.is_finite());
    assert!(ep.value_loss.is_finite());
    assert!(ep.entropy.is_finite());
}
