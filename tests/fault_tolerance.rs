//! Fault-tolerance integration tests: checkpoint/resume bit-identity,
//! panic-isolated rollout workers, and divergence rollback — the
//! acceptance criteria of the fault-tolerant training stack.

use std::path::PathBuf;

use pairuplight::{
    CheckpointManager, CheckpointPolicy, FaultPlan, PairUpLight, PairUpLightConfig, TrainError,
};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, TscEnv};

fn tiny_env() -> TscEnv {
    let grid = Grid::build(GridConfig {
        cols: 2,
        rows: 2,
        spacing: 150.0,
    })
    .expect("grid");
    let scenario = patterns::grid_scenario(&grid, FlowPattern::Five, &PatternConfig::default())
        .expect("scenario");
    TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: 140,
        },
        0,
    )
    .expect("env")
}

fn small_cfg() -> PairUpLightConfig {
    let mut cfg = PairUpLightConfig {
        hidden: 12,
        lstm_hidden: 12,
        ..Default::default()
    };
    cfg.ppo.epochs = 2;
    cfg.ppo.minibatch = 32;
    cfg
}

fn param_bits(model: &PairUpLight) -> Vec<u32> {
    model
        .parameter_vector()
        .iter()
        .map(|p| p.to_bits())
        .collect()
}

fn reward_bits(history: &[pairuplight::TrainEpisode]) -> Vec<u64> {
    history
        .iter()
        .map(|e| e.stats.total_reward.to_bits())
        .collect()
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pairuplight_ft_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The headline guarantee: kill training mid-run (via an injected
/// abort, after the due checkpoint is written), resume from the latest
/// checkpoint into a *fresh* learner, finish the schedule — and end
/// with exactly the parameters and episode returns of a run that was
/// never interrupted. Exercised with multi-env parallel rollouts so
/// the whole stack (derived seeds, env-index merge, derived shuffle
/// RNG, Adam timestep) is covered.
#[test]
fn resume_is_bit_identical_to_uninterrupted_run() {
    let mut cfg = small_cfg();
    cfg.num_envs = 2;
    const EPISODES: usize = 8; // 4 rounds of 2 replicas
    const BASE_SEED: u64 = 42;

    // Reference: uninterrupted run through the same loop.
    let mut env = tiny_env();
    let mut reference = PairUpLight::new(&env, cfg);
    let ref_history = reference
        .train_checkpointed(&mut env, EPISODES, BASE_SEED, None, |_| {})
        .expect("reference run");

    // Victim: checkpoints every round, killed after round 1 (= 4
    // episodes done).
    let dir = scratch_dir("resume");
    let manager = CheckpointManager::new(
        &dir,
        CheckpointPolicy {
            every_rounds: 1,
            keep_last: 3,
        },
    )
    .expect("manager");
    let mut env = tiny_env();
    let victim = PairUpLight::new(&env, cfg);
    victim.inject_faults(FaultPlan::new().abort_after_round(1));
    let mut victim = victim;
    let err = victim
        .train_checkpointed(&mut env, EPISODES, BASE_SEED, Some(&manager), |_| {})
        .expect_err("abort fault must fire");
    assert!(matches!(err, TrainError::Aborted { round: 1 }), "{err}");

    // Resume from the newest checkpoint into a fresh learner.
    let (_, latest) = manager.latest().expect("list").expect("checkpoint exists");
    let (mut resumed, base_seed) = PairUpLight::resume(&env, cfg, &latest).expect("resume");
    assert_eq!(base_seed, BASE_SEED, "checkpoint preserves the base seed");
    assert_eq!(resumed.episodes_trained(), 4, "2 rounds x 2 envs done");
    let remaining = EPISODES - resumed.episodes_trained();
    let tail_history = resumed
        .train_checkpointed(&mut env, remaining, base_seed, Some(&manager), |_| {})
        .expect("resumed run");

    assert_eq!(
        reward_bits(&tail_history),
        reward_bits(&ref_history[EPISODES - remaining..]),
        "resumed episode returns must match the uninterrupted run bit-for-bit"
    );
    assert_eq!(
        param_bits(&resumed),
        param_bits(&reference),
        "resumed parameters must match the uninterrupted run bit-for-bit"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected rollout-worker panic is caught, the replica is retried
/// with the same derived seed, and the final model is bit-identical to
/// a run where the panic never happened — a worker crash costs one
/// retry, not determinism.
#[test]
fn worker_panic_recovery_is_bit_identical_to_faultless_run() {
    let mut cfg = small_cfg();
    cfg.num_envs = 2;
    let run = |faults: Option<FaultPlan>| {
        let mut env = tiny_env();
        let model = PairUpLight::new(&env, cfg);
        if let Some(plan) = faults {
            model.inject_faults(plan);
        }
        let mut model = model;
        let history = model
            .train_checkpointed(&mut env, 4, 7, None, |_| {})
            .expect("training survives injected panics");
        (reward_bits(&history), param_bits(&model))
    };
    let clean = run(None);
    let faulted = run(Some(FaultPlan::new().panic_worker(0, 1).panic_worker(1, 0)));
    assert_eq!(clean.0, faulted.0, "returns unchanged by worker panics");
    assert_eq!(clean.1, faulted.1, "parameters unchanged by worker panics");
}

/// An injected non-finite parameter (the aftermath of a NaN gradient)
/// trips the divergence sentinel: the round is rolled back to the
/// pre-round snapshot, reseeded, and training completes with finite
/// parameters — no abort, no poisoned model.
#[test]
fn nan_gradient_is_rolled_back_and_training_completes() {
    let cfg = small_cfg();
    let mut env = tiny_env();
    let model = PairUpLight::new(&env, cfg);
    model.inject_faults(FaultPlan::new().nan_gradient(1));
    let mut model = model;
    let history = model
        .train_checkpointed(&mut env, 3, 11, None, |_| {})
        .expect("sentinel rollback must recover the round");
    assert_eq!(history.len(), 3);
    assert_eq!(model.rounds_trained(), 3);
    assert!(
        model.parameter_vector().iter().all(|p| p.is_finite()),
        "no NaN survives the rollback"
    );
}

/// When a worker keeps panicking past the retry budget, training fails
/// with a typed error naming the round and replica instead of crashing.
#[test]
fn exhausted_panic_retries_produce_a_typed_error() {
    let mut cfg = small_cfg();
    cfg.max_round_retries = 1;
    let mut env = tiny_env();
    let model = PairUpLight::new(&env, cfg);
    // First attempt + the single retry both panic.
    model.inject_faults(FaultPlan::new().panic_worker(0, 0).panic_worker(0, 0));
    let mut model = model;
    let err = model
        .train_checkpointed(&mut env, 2, 3, None, |_| {})
        .expect_err("retry budget is exhausted");
    assert!(
        matches!(
            err,
            TrainError::WorkerPanic {
                round: 0,
                env: 0,
                retries: 1,
            }
        ),
        "{err}"
    );
}

/// A corrupted or truncated checkpoint is rejected up front — and the
/// rejection leaves the learner's weights untouched (all-or-nothing
/// restore). A checkpoint from a different configuration is likewise
/// refused via the fingerprint.
#[test]
fn damaged_or_mismatched_checkpoints_are_rejected_without_side_effects() {
    let cfg = small_cfg();
    let mut env = tiny_env();
    let mut model = PairUpLight::new(&env, cfg);
    model.train_episode(&mut env, 1).expect("episode");
    let dir = scratch_dir("reject");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("ck.txt");
    model.save_checkpoint(&path, 0).expect("save");

    let mut other_cfg = small_cfg();
    other_cfg.seed = 5;
    let mut victim = PairUpLight::new(&env, other_cfg);
    victim.train_episode(&mut env, 2).expect("episode");
    let before = param_bits(&victim);

    // Fingerprint mismatch (different seed ⇒ different config).
    let err = victim.load_checkpoint(&path).expect_err("wrong config");
    assert!(err.to_string().contains("fingerprint"), "{err}");
    assert_eq!(param_bits(&victim), before, "reject leaves weights alone");

    // Corruption: flip a digit somewhere inside the body.
    let text = std::fs::read_to_string(&path).expect("read");
    let corrupted = text.replacen("0.9", "0.8", 1);
    assert_ne!(corrupted, text, "corruption target must exist");
    std::fs::write(&path, corrupted).expect("write");
    let mut same_cfg_model = PairUpLight::new(&env, cfg);
    let before = param_bits(&same_cfg_model);
    let err = same_cfg_model
        .load_checkpoint(&path)
        .expect_err("corrupt checkpoint");
    assert!(err.to_string().contains("checksum"), "{err}");
    assert_eq!(param_bits(&same_cfg_model), before);

    // Truncation.
    std::fs::write(&path, &text[..text.len() / 2]).expect("write");
    assert!(same_cfg_model.load_checkpoint(&path).is_err());
    assert_eq!(param_bits(&same_cfg_model), before);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A disk-full failure torn mid-checkpoint-write must not damage the
/// previous checkpoint: the atomic temp-then-rename protocol leaves
/// the torn bytes in a `.tmp` sibling, the published file stays the
/// older, fully valid checkpoint, and training resumes from it.
#[test]
fn torn_checkpoint_write_leaves_previous_checkpoint_loadable() {
    let cfg = small_cfg();
    let dir = scratch_dir("torn");
    let manager = CheckpointManager::new(
        &dir,
        CheckpointPolicy {
            every_rounds: 1,
            keep_last: 3,
        },
    )
    .expect("manager");
    let mut env = tiny_env();
    let model = PairUpLight::new(&env, cfg);
    // Rounds 0 and 1 checkpoint cleanly; round 2's write tears.
    model.inject_faults(FaultPlan::new().fail_checkpoint_write(2));
    let mut model = model;
    let err = model
        .train_checkpointed(&mut env, 4, 21, Some(&manager), |_| {})
        .expect_err("injected disk-full must surface");
    assert!(matches!(err, TrainError::Io(_)), "{err}");

    // The torn temp file exists and is NOT a valid checkpoint...
    let round3 = manager.path_for(3);
    let torn = PathBuf::from(format!("{}.tmp", round3.display()));
    assert!(torn.exists(), "torn write leaves a temp file behind");
    assert!(
        pairuplight::Checkpoint::read(&torn).is_err(),
        "half a checkpoint must not validate"
    );
    // ...the failed round's final file was never published...
    assert!(!round3.exists(), "rename must not have happened");
    // ...and the previous checkpoint is intact, loadable, and resumes.
    let (round, latest) = manager.latest().expect("list").expect("exists");
    assert_eq!(round, 2, "latest published checkpoint is the prior round");
    let (mut resumed, base_seed) = PairUpLight::resume(&env, cfg, &latest).expect("resume");
    assert_eq!(base_seed, 21);
    let remaining = 4 - resumed.episodes_trained();
    resumed
        .train_checkpointed(&mut env, remaining, base_seed, Some(&manager), |_| {})
        .expect("resume completes after the disk recovers");
    assert_eq!(resumed.episodes_trained(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Periodic checkpointing honors the retention policy: only the newest
/// `keep_last` files survive, and the newest is loadable.
#[test]
fn retention_keeps_only_the_newest_checkpoints() {
    let cfg = small_cfg();
    let dir = scratch_dir("retention");
    let manager = CheckpointManager::new(
        &dir,
        CheckpointPolicy {
            every_rounds: 1,
            keep_last: 2,
        },
    )
    .expect("manager");
    let mut env = tiny_env();
    let mut model = PairUpLight::new(&env, cfg);
    model
        .train_checkpointed(&mut env, 5, 0, Some(&manager), |_| {})
        .expect("train");
    let kept: Vec<u64> = manager
        .list()
        .expect("list")
        .into_iter()
        .map(|(round, _)| round)
        .collect();
    assert_eq!(kept, vec![4, 5], "only the two newest rounds survive");
    let (_, latest) = manager.latest().expect("list").expect("exists");
    let (resumed, _) = PairUpLight::resume(&env, cfg, &latest).expect("resume");
    assert_eq!(resumed.episodes_trained(), 5);
    let _ = std::fs::remove_dir_all(&dir);
}
