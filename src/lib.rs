//! Workspace root crate re-exporting the PairUpLight reproduction stack.
pub use pairuplight;
pub use tsc_baselines;
pub use tsc_bench;
pub use tsc_nn;
pub use tsc_obs;
pub use tsc_rl;
pub use tsc_serve;
pub use tsc_sim;
