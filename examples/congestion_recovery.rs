//! Congestion recovery: reproduce the paper's core scenario — an
//! oversaturated 6×6 grid under staggered, conflicting flows — and
//! watch how the network recovers (or fails to) under different
//! controllers.
//!
//! ```text
//! cargo run --release --example congestion_recovery [--episodes N]
//! ```

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_baselines::FixedTimeController;
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{Controller, EnvConfig, SimConfig, TscEnv};

/// Prints a time series of network load for one controller.
fn profile<C: Controller>(
    name: &str,
    env: &mut TscEnv,
    controller: &mut C,
    seed: u64,
) -> Result<(), tsc_sim::SimError> {
    let mut obs = env.reset(seed);
    controller.reset();
    println!("\n{name}: time -> active vehicles / backlog / mean pressure");
    loop {
        let actions: Vec<usize> = controller
            .decide(&obs)
            .into_iter()
            .enumerate()
            .map(|(i, a)| env.clamp_action(i, a))
            .collect();
        let step = env.step(&actions)?;
        obs = step.obs;
        let t = env.sim().time();
        if t % 450 < 7 {
            let pressure: f64 = obs.iter().map(|o| o.pressure()).sum::<f64>() / obs.len() as f64;
            println!(
                "  t={:>5}s  active={:>5}  backlog={:>4}  pressure={:>6.2}",
                t,
                env.sim().active_vehicles(),
                env.sim().backlog_vehicles(),
                pressure
            );
        }
        if step.done {
            break;
        }
    }
    println!(
        "  => finished {}/{} trips, avg travel {:.1}s",
        env.sim().metrics().finished(),
        env.sim().metrics().spawned(),
        env.sim().avg_travel_time()
    );
    let stats = tsc_sim::TripStats::collect(env.sim());
    println!(
        "  => finished-trip travel time: p50 {:.0}s  p90 {:.0}s  p99 {:.0}s",
        stats.finished.p50, stats.finished.p90, stats.finished.p99
    );
    if let Some((origin, worst)) = stats.worst_origin() {
        println!(
            "  => most starved origin: {origin} (mean {:.0}s over {} trips)",
            worst.mean, worst.count
        );
    }
    Ok(())
}

fn main() -> Result<(), tsc_sim::SimError> {
    let episodes: usize = std::env::args()
        .skip_while(|a| a != "--episodes")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);

    // The paper's 6x6 grid under the heavy-turning Pattern 2: two flow
    // groups staggered by 900 s, peaking at 500 veh/h per OD pair.
    let grid = Grid::build(GridConfig::default())?;
    let scenario = patterns::grid_scenario(&grid, FlowPattern::Two, &PatternConfig::default())?;
    let env_cfg = EnvConfig {
        decision_interval: 5,
        episode_horizon: 2700,
    };
    let mut env = TscEnv::new(scenario.clone(), SimConfig::default(), env_cfg, 7)?;

    // Train PairUpLight on the *training* pattern (Pattern 1), exactly
    // as the paper evaluates generalization.
    let train_scenario =
        patterns::grid_scenario(&grid, FlowPattern::One, &PatternConfig::default())?;
    let mut train_env = TscEnv::new(train_scenario, SimConfig::default(), env_cfg, 7)?;
    let mut cfg = PairUpLightConfig {
        hidden: 32,
        lstm_hidden: 32,
        eps_decay_episodes: episodes / 2,
        ..Default::default()
    };
    cfg.ppo.epochs = 2;
    let mut model = PairUpLight::new(&train_env, cfg);
    eprintln!("training PairUpLight on Pattern 1 for {episodes} episodes …");
    for i in 0..episodes {
        let ep = model.train_episode(&mut train_env, i as u64)?;
        if i % 10 == 0 {
            eprintln!(
                "  episode {:>3}: wait {:>7.2}s",
                i, ep.stats.avg_waiting_time
            );
        }
    }

    profile(
        "FixedTime",
        &mut env,
        &mut FixedTimeController::default(),
        99,
    )?;
    let mut trained = model.controller();
    profile(
        "PairUpLight (trained on Pattern 1)",
        &mut env,
        &mut trained,
        99,
    )?;
    Ok(())
}
