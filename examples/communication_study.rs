//! Communication study (paper §VI-E, Table IV, Fig. 11): inspect the
//! learned pairing, the message traffic, and the effect of bandwidth.
//!
//! ```text
//! cargo run --release --example communication_study
//! ```

use pairuplight::message::bits_per_step;
use pairuplight::{ObsEncoder, ObsNorm, PairUpLight, PairUpLightConfig, PairingTable};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, Simulation, TscEnv};

fn main() -> Result<(), tsc_sim::SimError> {
    // --- Part 1: who pairs with whom under congestion? -----------------
    let grid = Grid::build(GridConfig {
        cols: 3,
        rows: 3,
        spacing: 200.0,
    })?;
    let scenario = patterns::grid_scenario(&grid, FlowPattern::Two, &PatternConfig::default())?;
    let agents = scenario.agents();
    let encoder = ObsEncoder::new(&scenario.network, &agents, 4, ObsNorm::default());
    let pairing = PairingTable::new(&scenario.network, &agents, &encoder);
    let mut sim = Simulation::new(&scenario, SimConfig::default(), 3)?;
    println!("pairing evolution on a congesting 3x3 grid (agent -> partner):");
    for checkpoint in [60u32, 600, 1200] {
        while sim.time() < checkpoint {
            sim.step().unwrap();
        }
        let partners = pairing.partners(&sim.observe_all());
        let self_paired = partners
            .iter()
            .enumerate()
            .filter(|&(a, &p)| a == p)
            .count();
        println!(
            "  t={:>5}s partners={:?} ({} self-paired)",
            checkpoint, partners, self_paired
        );
    }

    // --- Part 2: Table IV bit accounting -------------------------------
    println!("\ncommunication overhead per intersection per decision step:");
    for bw in [0usize, 1, 2, 4] {
        println!("  bandwidth {bw}: {:>4} bits", bits_per_step(bw));
    }

    // --- Part 3: Fig. 11 in miniature — bandwidth 1 vs 2 ---------------
    let scenario = patterns::grid_scenario(&grid, FlowPattern::One, &PatternConfig::default())?;
    for bandwidth in [1usize, 2] {
        let mut env = TscEnv::new(
            scenario.clone(),
            SimConfig::default(),
            EnvConfig {
                decision_interval: 5,
                episode_horizon: 1800,
            },
            5,
        )?;
        let cfg = PairUpLightConfig {
            bandwidth,
            hidden: 24,
            lstm_hidden: 24,
            eps_decay_episodes: 8,
            ..Default::default()
        };
        let mut model = PairUpLight::new(&env, cfg);
        let mut final_wait = 0.0;
        for i in 0..15 {
            final_wait = model.train_episode(&mut env, i)?.stats.avg_waiting_time;
        }
        println!(
            "\nbandwidth {} ({} bits/step): waiting time after 15 episodes = {:.2}s",
            bandwidth,
            bits_per_step(bandwidth),
            final_wait
        );
    }
    println!("\n(the paper finds one 32-bit message is enough — Fig. 11)");
    Ok(())
}
