//! Heterogeneous real-world-style control (paper §VI-D): train
//! PairUpLight *without parameter sharing* on the Monaco-style network
//! — 30 intersections with irregular degree, mixed lane counts, and
//! different phase sets — and compare against fixed-time control.
//!
//! ```text
//! cargo run --release --example monaco_heterogeneous [--episodes N]
//! ```

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_baselines::FixedTimeController;
use tsc_scenario::{compile, monaco_spec};
use tsc_sim::{EnvConfig, SimConfig, TscEnv};

fn main() -> Result<(), tsc_sim::SimError> {
    let episodes: usize = std::env::args()
        .skip_while(|a| a != "--episodes")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);

    let scenario = compile(&monaco_spec(11))?.scenario;
    println!(
        "Monaco-style network: {} intersections, {} links",
        scenario.num_agents(),
        scenario.network.num_links()
    );
    let phase_counts: Vec<usize> = scenario
        .signal_plans
        .iter()
        .map(|p| p.num_phases())
        .collect();
    println!("phase-set sizes per intersection: {phase_counts:?}");
    println!("(heterogeneous phase sets make parameter sharing infeasible — §VI-D)\n");

    let mut env = TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5,
            episode_horizon: 2700,
        },
        11,
    )?;

    // No parameter sharing: every intersection owns its actor/critic.
    let mut cfg = PairUpLightConfig {
        parameter_sharing: false,
        hidden: 24,
        lstm_hidden: 24,
        eps_decay_episodes: episodes / 2,
        ..Default::default()
    };
    cfg.ppo.epochs = 2;
    let mut model = PairUpLight::new(&env, cfg);
    println!(
        "training {} per-agent parameters for {episodes} episodes …",
        model.num_parameters()
    );
    let mut best = f64::INFINITY;
    for i in 0..episodes {
        let ep = model.train_episode(&mut env, i as u64)?;
        best = best.min(ep.stats.avg_waiting_time);
        if i % 5 == 0 || i + 1 == episodes {
            println!(
                "episode {:>3}: avg waiting {:>7.2}s (best so far {:>7.2}s)",
                i, ep.stats.avg_waiting_time, best
            );
        }
    }

    let mut trained = model.controller();
    let rl = env.run_episode(&mut trained, 777)?;
    let mut fixed = FixedTimeController::default();
    let ft = env.run_episode(&mut fixed, 777)?;
    println!("\n              avg waiting   avg travel");
    println!(
        "PairUpLight {:>10.2}s {:>11.2}s",
        rl.avg_waiting_time, rl.avg_travel_time
    );
    println!(
        "FixedTime   {:>10.2}s {:>11.2}s",
        ft.avg_waiting_time, ft.avg_travel_time
    );
    Ok(())
}
