//! Quickstart: build a small grid, train PairUpLight for a handful of
//! episodes, then deploy the decentralized controller and compare it
//! with fixed-time control.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_baselines::FixedTimeController;
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{EnvConfig, SimConfig, TscEnv};

fn main() -> Result<(), tsc_sim::SimError> {
    // A 3x3 grid with the paper's light uniform traffic (Pattern 5).
    let grid = Grid::build(GridConfig {
        cols: 3,
        rows: 3,
        spacing: 200.0,
    })?;
    let scenario = patterns::grid_scenario(&grid, FlowPattern::Five, &PatternConfig::default())?;
    let mut env = TscEnv::new(
        scenario,
        SimConfig::default(),
        EnvConfig {
            decision_interval: 5, // 5 s green per decision (paper §VI-A)
            episode_horizon: 1200,
        },
        42,
    )?;
    println!(
        "environment: {} signalized intersections, {} decision steps/episode",
        env.num_agents(),
        env.steps_per_episode()
    );

    // Train the paper's model: PPO + GAE backbone, one 32-bit message
    // from the most congested upstream neighbor, centralized critic.
    let cfg = PairUpLightConfig {
        hidden: 32,
        lstm_hidden: 32,
        eps_decay_episodes: 10,
        ..Default::default()
    };
    let mut model = PairUpLight::new(&env, cfg);
    println!("training {} parameters …", model.num_parameters());
    for episode in 0..20 {
        let ep = model.train_episode(&mut env, episode)?;
        if episode % 5 == 0 || episode == 19 {
            println!(
                "episode {:>3}: avg waiting {:>6.2}s  mean message {:.3}",
                episode, ep.stats.avg_waiting_time, ep.mean_message
            );
        }
    }

    // Deploy (decentralized execution: the critic is discarded).
    let mut trained = model.controller();
    let rl = env.run_episode(&mut trained, 999)?;
    let mut fixed = FixedTimeController::default();
    let ft = env.run_episode(&mut fixed, 999)?;
    println!("\n              avg waiting   avg travel   completed");
    println!(
        "PairUpLight {:>10.2}s {:>11.2}s {:>8}/{}",
        rl.avg_waiting_time, rl.avg_travel_time, rl.finished, rl.spawned
    );
    println!(
        "FixedTime   {:>10.2}s {:>11.2}s {:>8}/{}",
        ft.avg_waiting_time, ft.avg_travel_time, ft.finished, ft.spawned
    );
    Ok(())
}
