//! Controller zoo: every controller in the repository — classic
//! traffic engineering (FixedTime, Actuated, MaxPressure) and the
//! trained RL models — evaluated head-to-head on the same workload.
//! Also demonstrates saving and reloading a trained policy.
//!
//! ```text
//! cargo run --release --example controller_zoo [--episodes N]
//! ```

use pairuplight::{PairUpLight, PairUpLightConfig};
use tsc_baselines::{ActuatedController, FixedTimeController, MaxPressureController};
use tsc_sim::scenario::grid::{Grid, GridConfig};
use tsc_sim::scenario::patterns::{self, FlowPattern, PatternConfig};
use tsc_sim::{Controller, EnvConfig, SimConfig, TscEnv};

fn evaluate(
    name: &str,
    env: &mut TscEnv,
    controller: &mut dyn Controller,
) -> Result<(), tsc_sim::SimError> {
    let stats = env.run_episode(controller, 4242)?;
    println!(
        "{name:<28} wait {:>8.2}s   travel {:>8.2}s   {:>5}/{} trips",
        stats.avg_waiting_time, stats.avg_travel_time, stats.finished, stats.spawned
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let episodes: usize = std::env::args()
        .skip_while(|a| a != "--episodes")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    let grid = Grid::build(GridConfig {
        cols: 4,
        rows: 4,
        spacing: 200.0,
    })?;
    let scenario = patterns::grid_scenario(&grid, FlowPattern::One, &PatternConfig::default())?;
    let env_cfg = EnvConfig {
        decision_interval: 5,
        episode_horizon: 2100,
    };
    let mut env = TscEnv::new(scenario, SimConfig::default(), env_cfg, 1)?;

    // Train PairUpLight, save it, and reload it into a fresh learner —
    // the evaluated controller comes from the *reloaded* model.
    let mut cfg = PairUpLightConfig {
        hidden: 32,
        lstm_hidden: 32,
        eps_decay_episodes: episodes / 2,
        ..Default::default()
    };
    cfg.ppo.epochs = 2;
    let mut model = PairUpLight::new(&env, cfg);
    eprintln!("training PairUpLight for {episodes} episodes …");
    for i in 0..episodes {
        let ep = model.train_episode(&mut env, i as u64)?;
        if i % 10 == 0 {
            eprintln!(
                "  episode {:>3}: wait {:>7.2}s",
                i, ep.stats.avg_waiting_time
            );
        }
    }
    let path = std::env::temp_dir().join("pairuplight_zoo_model.txt");
    model.save(&path)?;
    let mut reloaded = PairUpLight::new(&env, cfg);
    reloaded.load(&path)?;
    std::fs::remove_file(&path).ok();
    eprintln!("policy saved and reloaded from disk\n");

    println!("controller                         avg wait     avg travel    completed");
    evaluate("FixedTime", &mut env, &mut FixedTimeController::default())?;
    evaluate(
        "Actuated (gap-out)",
        &mut env,
        &mut ActuatedController::default(),
    )?;
    evaluate(
        "MaxPressure",
        &mut env,
        &mut MaxPressureController::default(),
    )?;
    let mut rl = reloaded.controller();
    evaluate("PairUpLight (reloaded)", &mut env, &mut rl)?;
    Ok(())
}
